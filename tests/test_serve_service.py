"""CompileService: admission, single-flight coalescing, serve tiers."""

import threading
import time
from types import SimpleNamespace

import pytest

from repro.core.cache import shape_fingerprint
from repro.core.constructor import GensorConfig
from repro.ir import operators as ops
from repro.ir.etir import ETIR
from repro.serve import CompileService, SingleFlight
from repro.serve.request import CompileRequest, ServeTicket


def tiny_config(seed=0):
    return GensorConfig(
        seed=seed, num_chains=1, top_k=2, polish_steps=2,
        max_iterations_per_chain=8,
    )


def make_service(hw, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("queue_capacity", 16)
    kwargs.setdefault("warm_polish_steps", 2)
    kwargs.setdefault("degraded_polish_steps", 2)
    return CompileService(hw, tiny_config(), **kwargs)


def gemm(m=64, k=32, n=64, name="op"):
    return ops.matmul(m, k, n, name)


def ticket_for(compute):
    return ServeTicket(CompileRequest(compute=compute))


class TestSingleFlightRegistry:
    def test_first_leads_rest_attach(self):
        flight = SingleFlight()
        lead, follow = ticket_for(gemm()), ticket_for(gemm())
        assert flight.attach_or_lead("k", lead) is False
        assert flight.attach_or_lead("k", follow) is True
        assert flight.in_flight() == 1
        assert flight.complete("k") == [follow]
        assert flight.in_flight() == 0

    def test_distinct_keys_fly_independently(self):
        flight = SingleFlight()
        assert flight.attach_or_lead("a", ticket_for(gemm())) is False
        assert flight.attach_or_lead("b", ticket_for(gemm())) is False
        assert flight.in_flight() == 2

    def test_complete_unknown_key_is_empty(self):
        assert SingleFlight().complete("ghost") == []


class TestSingleFlightDedup:
    def test_concurrent_duplicates_compile_once(self, hw):
        """N identical in-flight requests trigger exactly one compilation."""
        service = make_service(hw)
        calls: list = []
        started = threading.Event()
        gate = threading.Event()

        def fake_compile(compute, measurer=None, cancel=None, **kwargs):
            calls.append(compute)
            started.set()
            assert gate.wait(5.0)
            return SimpleNamespace(source="cold", result=None)

        service.dynamic.compile = fake_compile
        compute = gemm()
        leader = service.submit(compute)
        assert started.wait(5.0)  # the leader now holds a worker
        followers = [service.submit(gemm(name=f"dup{i}")) for i in range(5)]
        gate.set()
        responses = [t.result(timeout=5.0) for t in (leader, *followers)]
        service.close()
        assert len(calls) == 1
        assert all(r.ok and r.tier == "cold" for r in responses)
        assert [r.coalesced for r in responses] == [False] + [True] * 5
        assert service.stats.snapshot()["coalesced"] == 5

    def test_sequential_duplicates_do_not_coalesce(self, hw):
        """Coalescing is concurrency-scoped; repeats over time hit the cache."""
        with make_service(hw) as service:
            first = service.serve(gemm(), timeout=30.0)
            second = service.serve(gemm(), timeout=30.0)
        assert first.tier == "cold" and not first.coalesced
        assert second.tier == "hit" and not second.coalesced


class TestAdmissionControl:
    def test_saturated_queue_rejects_with_reason(self, hw):
        service = make_service(hw, workers=1, queue_capacity=1)
        started = threading.Event()
        gate = threading.Event()

        def fake_compile(compute, measurer=None, cancel=None, **kwargs):
            started.set()
            assert gate.wait(5.0)
            return SimpleNamespace(source="cold", result=None)

        service.dynamic.compile = fake_compile
        blocker = service.submit(gemm(64, 32, 64))
        assert started.wait(5.0)
        queued = service.submit(gemm(128, 32, 64))  # fills the only slot
        rejected = service.submit(gemm(256, 32, 64)).result(timeout=1.0)
        assert rejected.tier == "rejected" and not rejected.ok
        assert rejected.reason == "queue_full"
        gate.set()
        assert blocker.result(timeout=5.0).ok
        assert queued.result(timeout=5.0).ok
        service.close()
        assert service.stats.snapshot()["rejected"] == 1

    def test_rejection_covers_attached_followers(self, hw):
        service = make_service(hw, workers=1, queue_capacity=1)
        # Force the leader's enqueue to fail while a follower is attached.
        key = f"{hw.name}/{shape_fingerprint(gemm())}"
        follower = ticket_for(gemm())
        lead = ticket_for(gemm())
        assert service._flight.attach_or_lead(key, lead) is False
        assert service._flight.attach_or_lead(key, follower) is True
        service._refuse(key, lead, "queue_full")
        assert lead.result(timeout=1.0).tier == "rejected"
        resp = follower.result(timeout=1.0)
        assert resp.tier == "rejected" and resp.coalesced
        service.close()

    def test_submit_after_close_rejects(self, hw):
        service = make_service(hw)
        service.close()
        response = service.submit(gemm()).result(timeout=1.0)
        assert response.tier == "rejected" and not response.ok
        assert response.reason == "shutting_down"

    def test_close_is_idempotent(self, hw):
        service = make_service(hw)
        service.close()
        service.close()


class TestServeTiers:
    def test_hit_then_warm_progression(self, hw):
        with make_service(hw) as service:
            cold = service.serve(gemm(64, 32, 64), timeout=30.0)
            hit = service.serve(gemm(64, 32, 64), timeout=30.0)
            warm = service.serve(gemm(128, 32, 64), timeout=30.0)
        assert cold.tier == "cold"
        assert hit.tier == "hit"
        assert warm.tier == "warm"
        assert all(r.ok and r.result is not None for r in (cold, hit, warm))

    def test_failure_is_retried_then_shed_to_degraded(self, hw):
        service = make_service(hw)
        calls: list = []

        def boom(compute, measurer=None, cancel=None, **kwargs):
            calls.append(compute)
            raise RuntimeError("kaboom")

        service.dynamic.compile = boom
        response = service.submit(gemm()).result(timeout=10.0)
        # every retry attempt failed, so the request was shed to the
        # analytical degraded tier — a schedule still comes back, tagged
        # with the underlying failure.
        assert response.ok and response.degraded
        assert "kaboom" in response.reason
        assert len(calls) >= 3  # all retry attempts ran
        assert service.stats.snapshot()["retries"] >= 3
        # the worker survived the exceptions and still serves
        service.dynamic.compile = lambda c, m=None, cancel=None, **kw: (
            SimpleNamespace(source="cold", result=None)
        )
        assert service.submit(gemm(128, 32, 64)).result(timeout=5.0).ok
        service.close()


class TestDeadlineDegradation:
    def test_tight_deadline_serves_seed_tier(self, hw):
        service = make_service(hw, cold_cost_estimate_s=1e9)
        response = service.serve(gemm(), deadline_s=10.0, timeout=30.0)
        assert response.tier == "degraded_seed"
        assert response.ok and response.degraded
        assert response.result is not None
        assert service.stats.snapshot()["degraded_seed"] == 1
        # seed picks are analytical only and never pollute the cache...
        service.close()
        # ...but the backfill compiled the shape in the background.
        assert service.cache.get(gemm()) is not None
        assert service.stats.snapshot()["backfilled"] == 1

    def test_tight_deadline_with_neighbor_serves_degraded_warm(self, hw):
        service = make_service(hw, cold_cost_estimate_s=1e9)
        neighbor = ETIR.from_tiles(
            gemm(128, 32, 64, "seed"),
            {"i": 32, "j": 32, "k": 16}, {"i": 4, "j": 4}, {"i": 1},
        )
        service.cache.put(neighbor, 1e-3)
        response = service.serve(gemm(64, 32, 64), deadline_s=10.0, timeout=30.0)
        service.close()
        assert response.tier == "degraded_warm"
        assert response.ok and response.degraded
        # degraded-warm results are measured, so they do enter the cache
        assert service.cache.get(gemm(64, 32, 64)) is not None

    def test_no_deadline_never_degrades(self, hw):
        with make_service(hw, cold_cost_estimate_s=1e9) as service:
            response = service.serve(gemm(), timeout=30.0)
        assert response.tier == "cold"

    def test_generous_deadline_not_degraded(self, hw):
        with make_service(hw, cold_cost_estimate_s=0.0) as service:
            response = service.serve(gemm(), deadline_s=600.0, timeout=30.0)
        assert response.tier == "cold"
        assert response.deadline_met

    def test_cached_shape_ignores_deadline_pressure(self, hw):
        with make_service(hw, cold_cost_estimate_s=1e9) as service:
            service.serve(gemm(), timeout=30.0)  # cold-fills the cache
            response = service.serve(gemm(), deadline_s=0.5, timeout=30.0)
        assert response.tier == "hit"

    def test_cold_observation_updates_estimate(self, hw):
        with make_service(hw, cold_cost_estimate_s=100.0) as service:
            before = service.cold_cost_estimate_s
            service.serve(gemm(), timeout=30.0)
            after = service.cold_cost_estimate_s
        assert after < before  # EMA pulled toward the observed fast cold


class TestProgramServing:
    def program_graph(self):
        from repro.models import ModelGraph

        g = ModelGraph("tiny", batch=1)
        g.add(ops.matmul(64, 32, 64, "mm"))
        g.add(ops.elementwise((64, 64), "gelu", "act"))
        g.add(ops.matmul(64, 16, 64, "mm2"))
        return g

    def test_compile_program_serves_all_groups(self, hw):
        with make_service(hw) as service:
            response = service.compile_program(self.program_graph(), timeout=60.0)
        assert response.ok
        prog = response.program
        assert [g.anchor_name for g in prog.groups] == ["mm", "mm2"]
        assert prog.groups[0].epilogue_names == ("act",)
        assert len(response.tiers) == 2
        assert response.latency_s == prog.latency_s > 0.0
        assert response.service_latency_s > 0.0

    def test_compile_program_without_fusion_is_per_op(self, hw):
        with make_service(hw) as service:
            response = service.compile_program(
                self.program_graph(), fusion=False, timeout=60.0
            )
        assert response.ok
        prog = response.program
        assert [g.anchor_name for g in prog.groups] == ["mm", "act", "mm2"]
        assert all(g.epilogue_names == () for g in prog.groups)
        assert prog.num_fused_ops == 0

    def test_fused_and_bare_submissions_never_coalesce(self, hw):
        """A fused-group request must not attach to an in-flight bare
        compile of the same anchor shape (or vice versa) — the epilogue
        pool changes the answer."""
        import threading
        from types import SimpleNamespace

        service = make_service(hw)
        seen = []
        started = threading.Event()
        gate = threading.Event()

        def fake_compile(compute, measurer=None, cancel=None, epilogues=(), **kw):
            seen.append((compute.name, tuple(ep.name for ep in epilogues)))
            started.set()
            assert gate.wait(5.0)
            return SimpleNamespace(source="cold", result=None)

        service.dynamic.compile = fake_compile
        anchor = gemm()
        bare = service.submit(anchor)
        assert started.wait(5.0)
        fused = service.submit(
            gemm(name="fused_twin"),
            epilogues=(ops.elementwise((64, 64), "relu", "ep"),),
        )
        gate.set()
        bare.result(timeout=5.0)
        fused.result(timeout=5.0)
        service.close()
        assert len(seen) == 2  # no single-flight coalescing across pools
        assert {eps for _, eps in seen} == {(), ("ep",)}

    def test_group_failure_fails_whole_program(self, hw):
        from repro.serve.program import ProgramRequest, serve_program

        service = make_service(hw, queue_capacity=1, workers=1)
        request = ProgramRequest.from_graph(self.program_graph())
        service.close()  # every submit now rejects
        response = serve_program(service, request, timeout=5.0)
        assert not response.ok
        assert response.program is None
        assert "mm" in response.reason
        with pytest.raises(ValueError):
            response.latency_s
