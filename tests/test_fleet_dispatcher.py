"""Multi-process fleet: end-to-end serving, dedup, crash respawn, cache.

Each FleetDispatcher boots real spawn-start processes, so the suite keeps
shard counts and construction budgets tiny and reuses one running fleet
across the read-only tests.
"""

import time
from pathlib import Path

import pytest

from repro.core.cache import ScheduleCache, shape_fingerprint
from repro.core.constructor import GensorConfig
from repro.fleet import (
    FleetDispatcher,
    ShardOptions,
    WireControl,
)
from repro.hardware import rtx4090
from repro.ir import operators as ops


def tiny_config(seed=0):
    return GensorConfig(
        seed=seed, num_chains=1, top_k=2, polish_steps=2,
        max_iterations_per_chain=8,
    )


def tiny_options(**overrides):
    base = dict(
        device="rtx4090",
        config=tiny_config(),
        workers=2,
        queue_capacity=32,
        warm_polish_steps=2,
        warm_pool=2,
        time_scale=0.0,
        sync_interval_s=0.2,
    )
    base.update(overrides)
    return ShardOptions(**base)


def gemm(m=64, k=32, n=64, name="op"):
    return ops.matmul(m, k, n, name)


@pytest.fixture(scope="module")
def fleet():
    dispatcher = FleetDispatcher(
        tiny_options(), 2, routing="hash", supervise_interval_s=0.1
    )
    yield dispatcher
    dispatcher.close()


class TestServing:
    def test_serves_cold_then_hit(self, fleet):
        first = fleet.serve(gemm(name="serve_a"), timeout=60)
        again = fleet.serve(gemm(name="serve_a"), timeout=60)
        assert first.ok and first.tier == "cold"
        assert again.ok and again.tier == "hit"
        assert first.schedule_key() == again.schedule_key()

    def test_response_carries_portable_schedule(self, fleet):
        compute = gemm(128, 32, 64, name="serve_b")
        response = fleet.serve(compute, timeout=60)
        assert response.ok
        assert response.kernel_latency_s > 0
        state = response.schedule.instantiate(compute)
        assert state.compute.name == compute.name

    def test_distinct_families_route_by_family(self, fleet):
        a = fleet.serve(gemm(name="route_a"), timeout=60)
        b = fleet.serve(
            ops.elementwise((64, 64), "relu", name="route_b"), timeout=60
        )
        assignments = fleet.router.assignments()
        assert len(assignments) >= 2
        assert a.shard in (0, 1) and b.shard in (0, 1)

    def test_fleet_wide_single_flight_dedup(self, fleet):
        shapes = [gemm(96, 32, 64, name="dedup") for _ in range(6)]
        tickets = [fleet.submit(c) for c in shapes]
        responses = [t.result(timeout=60) for t in tickets]
        assert all(r.ok for r in responses)
        assert sum(1 for r in responses if r.coalesced) >= 1
        keys = {r.schedule_key() for r in responses}
        assert len(keys) == 1  # followers share the leader's schedule

    def test_fleet_metrics_merge_shard_series(self, fleet):
        fleet.serve(gemm(name="metrics_a"), timeout=60)
        fleet.sync()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            merged = fleet.fleet_metrics()
            if merged.series("fleet_shard_requests_total"):
                break
            time.sleep(0.05)
        assert merged.series("fleet_shard_requests_total")
        assert merged.series("fleet_requests_total")
        assert fleet.shard_stats()


class TestShutdown:
    def test_submit_after_close_is_refused(self):
        dispatcher = FleetDispatcher(tiny_options(), 1)
        dispatcher.serve(gemm(name="pre_close"), timeout=60)
        dispatcher.close()
        response = dispatcher.submit(gemm(name="post_close")).result(
            timeout=5
        )
        assert not response.ok
        assert response.tier == "rejected"
        assert response.reason == "shutting_down"

    def test_close_is_idempotent(self):
        dispatcher = FleetDispatcher(tiny_options(), 1)
        dispatcher.close()
        dispatcher.close()


class TestCrashRespawn:
    def test_crashed_shard_respawns_and_requeues(self):
        with FleetDispatcher(
            tiny_options(), 1, supervise_interval_s=0.05
        ) as fleet:
            warm = fleet.serve(gemm(name="crash_warm"), timeout=60)
            assert warm.ok
            fleet._req_qs[0].put(WireControl("crash"))
            # keep submitting through the crash window: every request must
            # still resolve (requeued by the supervisor onto the respawn)
            tickets = [
                fleet.submit(gemm(64 * (i + 1), 32, 64, name=f"crash_{i}"))
                for i in range(4)
            ]
            responses = [t.result(timeout=120) for t in tickets]
            assert all(r.ok for r in responses)
            assert fleet.respawns >= 1
            respawn_series = fleet.registry.series(
                "fleet_shard_respawns_total"
            )
            assert sum(c.value for c in respawn_series.values()) >= 1


class TestSharedCache:
    def test_replicated_cache_warms_a_new_fleet(self, tmp_path):
        cache_path = str(tmp_path / "shared" / "fleet_cache.json")
        compute = gemm(name="shared_cache")
        with FleetDispatcher(
            tiny_options(cache_path=cache_path), 1
        ) as fleet:
            cold = fleet.serve(compute, timeout=60)
            assert cold.tier == "cold"
            fleet.sync()
            deadline = time.monotonic() + 15
            loaded = ScheduleCache(rtx4090())
            while time.monotonic() < deadline:
                if Path(cache_path).exists():
                    loaded = ScheduleCache.load(cache_path, rtx4090())
                    if len(loaded):
                        break
                time.sleep(0.1)
            assert loaded.get(compute) is not None
        # a brand-new fleet boots warm off the shared database
        with FleetDispatcher(
            tiny_options(cache_path=cache_path), 1
        ) as fresh:
            hit = fresh.serve(compute, timeout=60)
            assert hit.tier == "hit"


class TestProgramServing:
    def test_serve_program_across_shards(self, fleet):
        from repro.models import ModelGraph

        g = ModelGraph("fleet_prog", batch=1)
        g.add(ops.matmul(64, 32, 64, "fp_mm"))
        g.add(ops.elementwise((64, 64), "gelu", "fp_act"))
        g.add(ops.matmul(64, 16, 64, "fp_mm2"))
        response = fleet.serve_program(g, timeout=120)
        assert response.ok
        prog = response.program
        assert [grp.anchor_name for grp in prog.groups] == ["fp_mm", "fp_mm2"]
        assert prog.groups[0].epilogue_names == ("fp_act",)
        assert prog.latency_s > 0.0
        # Group latency always covers pending epilogues, fused or not.
        grp = prog.groups[0]
        assert grp.latency_s == grp.kernel_latency_s + grp.pending_cost_s
        if grp.fused == 0:
            assert grp.pending_cost_s > 0.0
