"""Persistent schedule cache."""

import threading

import pytest

from repro.core.cache import (
    CachedSchedule,
    ScheduleCache,
    family_fingerprint,
    shape_fingerprint,
)
from repro.ir import operators as ops
from repro.ir.etir import ETIR


def make_state(m=512, k=256, n=512, name="g"):
    g = ops.matmul(m, k, n, name)
    return ETIR.from_tiles(g, {"i": 64, "j": 64, "k": 32}, {"i": 4, "j": 4}, {"i": 2})


class TestFingerprint:
    def test_name_independent(self):
        a = ops.matmul(64, 32, 64, "first")
        b = ops.matmul(64, 32, 64, "second")
        assert shape_fingerprint(a) == shape_fingerprint(b)

    def test_shape_sensitive(self):
        a = ops.matmul(64, 32, 64)
        b = ops.matmul(64, 32, 128)
        assert shape_fingerprint(a) != shape_fingerprint(b)

    def test_kind_sensitive(self):
        a = ops.matmul(64, 64, 64)
        fp = shape_fingerprint(a)
        assert fp.startswith("gemm[")


class TestFamilyFingerprint:
    def test_extent_independent(self):
        a = ops.matmul(64, 32, 64, "small")
        b = ops.matmul(4096, 4096, 4096, "big")
        assert family_fingerprint(a) == family_fingerprint(b)

    def test_kind_sensitive(self):
        a = ops.matmul(64, 64, 64)
        b = ops.gemv(64, 64)
        assert family_fingerprint(a) != family_fingerprint(b)

    def test_coarser_than_shape_fingerprint(self):
        a = ops.matmul(64, 32, 64)
        b = ops.matmul(128, 32, 64)
        assert shape_fingerprint(a) != shape_fingerprint(b)
        assert family_fingerprint(a) == family_fingerprint(b)


class TestCachedSchedule:
    def test_round_trip_state(self):
        state = make_state()
        entry = CachedSchedule.from_state(state, 1e-3)
        rebuilt = entry.instantiate(state.compute)
        assert rebuilt is not None
        assert rebuilt.block_tiles() == state.block_tiles()
        assert rebuilt.thread_tiles() == state.thread_tiles()
        assert rebuilt.total_vthreads() == state.total_vthreads()

    def test_instantiate_adapts_to_smaller_shape(self):
        entry = CachedSchedule.from_state(make_state(), 1e-3)
        small = ops.matmul(32, 16, 32, "small")
        adapted = entry.instantiate(small)
        assert adapted is not None
        assert adapted.block_tiles()["i"] == 32  # clipped to extent

    def test_instantiate_rejects_foreign_axes(self):
        entry = CachedSchedule.from_state(make_state(), 1e-3)
        conv = ops.conv2d(1, 4, 8, 8, 4, 3, 3, 1, "c")
        assert entry.instantiate(conv) is None

    def test_json_round_trip(self):
        entry = CachedSchedule.from_state(make_state(), 2.5e-3)
        again = CachedSchedule.from_json(entry.to_json())
        assert again == entry


class TestScheduleCache:
    def test_put_get(self, hw):
        cache = ScheduleCache(hw)
        state = make_state()
        cache.put(state, 1e-3)
        entry = cache.get(state.compute)
        assert entry is not None and entry.latency_s == 1e-3

    def test_put_keeps_faster_entry(self, hw):
        cache = ScheduleCache(hw)
        state = make_state()
        cache.put(state, 1e-3)
        cache.put(state, 5e-3)  # slower: ignored
        assert cache.get(state.compute).latency_s == 1e-3
        cache.put(state, 5e-4)  # faster: replaces
        assert cache.get(state.compute).latency_s == 5e-4

    def test_nearest_prefers_closest_shape(self, hw):
        cache = ScheduleCache(hw)
        cache.put(make_state(512, 256, 512, "a"), 1e-3)
        cache.put(make_state(4096, 256, 512, "b"), 2e-3)
        probe = ops.matmul(600, 256, 512, "probe")
        entry = cache.nearest(probe)
        assert entry is not None and entry.extents["i"] == 512

    def test_nearest_ignores_other_kinds(self, hw):
        cache = ScheduleCache(hw)
        cache.put(make_state(), 1e-3)
        probe = ops.gemv(512, 256, "v")
        assert cache.nearest(probe) is None

    def test_miss_returns_none(self, hw):
        cache = ScheduleCache(hw)
        assert cache.get(ops.matmul(8, 8, 8)) is None

    def test_save_load_round_trip(self, hw, tmp_path):
        cache = ScheduleCache(hw)
        cache.put(make_state(), 1e-3)
        path = tmp_path / "cache.json"
        cache.save(path)
        loaded = ScheduleCache.load(path, hw)
        assert len(loaded) == 1
        assert loaded.get(make_state().compute).latency_s == 1e-3

    def test_load_rejects_wrong_device(self, hw, edge_hw, tmp_path):
        cache = ScheduleCache(hw)
        cache.put(make_state(), 1e-3)
        path = tmp_path / "cache.json"
        cache.save(path)
        with pytest.raises(ValueError, match="tuned for"):
            ScheduleCache.load(path, edge_hw)

    def test_save_leaves_no_temp_files(self, hw, tmp_path):
        cache = ScheduleCache(hw)
        cache.put(make_state(), 1e-3)
        cache.save(tmp_path / "cache.json")
        # the persistent ``.lock`` sibling is the cross-process save guard;
        # what must never leak is a journal temp file.
        names = {p.name for p in tmp_path.iterdir()}
        assert names == {"cache.json", "cache.json.lock"}
        assert not [n for n in names if "journal" in n]

    def test_save_replaces_existing_file(self, hw, tmp_path):
        path = tmp_path / "cache.json"
        cache = ScheduleCache(hw)
        cache.save(path)
        cache.put(make_state(), 1e-3)
        cache.save(path)
        assert len(ScheduleCache.load(path, hw)) == 1

    def test_strict_load_rejects_corrupt_json(self, hw, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text('{"device": "NVIDIA GeF')  # truncated mid-write
        with pytest.raises(ValueError, match="corrupt schedule cache"):
            ScheduleCache.load(path, hw, strict=True)

    def test_strict_load_rejects_wrong_payload_shape(self, hw, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text('["not", "a", "cache"]')
        with pytest.raises(ValueError, match="ill-formed schedule cache"):
            ScheduleCache.load(path, hw, strict=True)

    def test_strict_load_rejects_ill_formed_entry(self, hw, tmp_path):
        cache = ScheduleCache(hw)
        cache.put(make_state(), 1e-3)
        path = tmp_path / "cache.json"
        cache.save(path)
        import json

        payload = json.loads(path.read_text())
        key = next(iter(payload["entries"]))
        del payload["entries"][key]["block_tiles"]
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="ill-formed schedule cache entry"):
            ScheduleCache.load(path, hw, strict=True)

    def test_default_load_quarantines_corrupt_json(self, hw, tmp_path):
        """Crash-safe default: a truncated file loads as empty + quarantine
        (full corruption-recovery coverage in test_cache_crashsafe.py)."""
        path = tmp_path / "cache.json"
        path.write_text('{"device": "NVIDIA GeF')
        loaded = ScheduleCache.load(path, hw)
        assert len(loaded) == 0
        assert loaded.quarantined
        assert (tmp_path / ".quarantine" / "cache.json").exists()


class TestCacheThreadSafety:
    def test_concurrent_put_get_nearest(self, hw):
        """Many threads hammering one cache: no exceptions, no lost entries."""
        cache = ScheduleCache(hw)
        sizes = [64, 128, 256, 512, 1024, 2048]
        errors: list[Exception] = []

        def worker(tid: int) -> None:
            try:
                for round_ in range(30):
                    m = sizes[(tid + round_) % len(sizes)]
                    state = make_state(m, 256, 512, f"t{tid}")
                    cache.put(state, 1e-3 / (tid + 1))
                    cache.get(state.compute)
                    cache.nearest(ops.matmul(m + 8, 256, 512, "probe"))
                    len(cache)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(cache) == len(sizes)
        # every fingerprint kept its fastest observed latency
        for entry in cache.entries():
            assert entry.latency_s == pytest.approx(1e-3 / 8)
