"""Model compilation/timing and the dynamic scenario driver."""

import pytest

from repro.baselines import PyTorchEager, Roller, VendorLibrary
from repro.ir import operators as ops
from repro.models.graph import ModelGraph
from repro.models.runner import DynamicScenario, compile_and_time


@pytest.fixture
def tiny_model():
    g = ModelGraph("tiny", batch=16)
    g.add(ops.matmul(256, 128, 256, "mm"), count=3)
    g.add(ops.elementwise((256, 256), "relu", "act"), count=3)
    return g


class TestCompileAndTime:
    def test_latency_is_weighted_sum(self, hw, tiny_model):
        vendor = VendorLibrary(hw)
        run = compile_and_time(tiny_model, vendor)
        expected = sum(
            vendor.compile(inst.compute).best_metrics.latency_s * inst.count
            for inst in tiny_model.ops
        )
        assert run.latency_s == pytest.approx(expected)

    def test_throughput(self, hw, tiny_model):
        run = compile_and_time(tiny_model, VendorLibrary(hw))
        assert run.throughput == pytest.approx(16 / run.latency_s)

    def test_per_op_latencies_recorded(self, hw, tiny_model):
        run = compile_and_time(tiny_model, VendorLibrary(hw))
        assert set(run.per_op_latency) == {"mm", "act"}

    def test_method_name_defaults_to_compiler(self, hw, tiny_model):
        run = compile_and_time(tiny_model, Roller(hw))
        assert run.method == "roller"

    def test_compile_cost_summed(self, hw, tiny_model):
        run = compile_and_time(tiny_model, Roller(hw))
        assert run.compile_seconds > 0


class TestDynamicScenario:
    def _factory(self, cycle):
        g = ModelGraph(f"m{cycle}", batch=16)
        g.add(ops.matmul(256, 128 * (cycle + 1), 256, "mm"))
        return g

    def test_segments_alternate(self, hw):
        scenario = DynamicScenario(self._factory, cycles=2, frames_per_stage=64)
        segments = scenario.run(Roller(hw))
        kinds = [s.kind for s in segments]
        assert kinds == ["optimize", "inference", "optimize", "inference"]

    def test_pytorch_never_reoptimizes(self, hw):
        scenario = DynamicScenario(self._factory, cycles=3, frames_per_stage=64)
        segments = scenario.run(PyTorchEager(hw), reoptimize=False)
        assert all(s.kind == "inference" for s in segments)

    def test_timeline_is_contiguous(self, hw):
        scenario = DynamicScenario(self._factory, cycles=2, frames_per_stage=64)
        segments = scenario.run(Roller(hw))
        clock = 0.0
        for seg in segments:
            assert seg.start_s == pytest.approx(clock)
            clock = seg.end_s
        assert DynamicScenario.total_time(segments) == pytest.approx(clock)

    def test_invalid_cycles(self):
        with pytest.raises(ValueError, match="cycles"):
            DynamicScenario(self._factory, cycles=0)

    def test_frames_scale_inference_time(self, hw):
        short = DynamicScenario(self._factory, cycles=1, frames_per_stage=64)
        long = DynamicScenario(self._factory, cycles=1, frames_per_stage=640)
        t_short = [s for s in short.run(Roller(hw)) if s.kind == "inference"][0]
        t_long = [s for s in long.run(Roller(hw)) if s.kind == "inference"][0]
        assert t_long.duration_s == pytest.approx(t_short.duration_s * 10)
