"""Model compilation/timing and the dynamic scenario driver."""

import pytest

from repro.baselines import PyTorchEager, Roller, VendorLibrary
from repro.ir import operators as ops
from repro.models.graph import ModelGraph
from repro.models.runner import DynamicScenario, compile_and_time


@pytest.fixture
def tiny_model():
    g = ModelGraph("tiny", batch=16)
    g.add(ops.matmul(256, 128, 256, "mm"), count=3)
    g.add(ops.elementwise((256, 256), "relu", "act"), count=3)
    return g


class TestCompileAndTime:
    def test_latency_is_weighted_sum(self, hw, tiny_model):
        vendor = VendorLibrary(hw)
        run = compile_and_time(tiny_model, vendor)
        expected = sum(
            vendor.compile(inst.compute).best_metrics.latency_s * inst.count
            for inst in tiny_model.ops
        )
        assert run.latency_s == pytest.approx(expected)

    def test_throughput(self, hw, tiny_model):
        run = compile_and_time(tiny_model, VendorLibrary(hw))
        assert run.throughput == pytest.approx(16 / run.latency_s)

    def test_per_op_latencies_recorded(self, hw, tiny_model):
        run = compile_and_time(tiny_model, VendorLibrary(hw))
        expected = {
            ModelGraph.op_label(inst.compute) for inst in tiny_model.ops
        }
        assert set(run.per_op_latency) == expected
        assert all("@" in k for k in run.per_op_latency)

    def test_per_op_keys_distinguish_shapes(self, hw):
        # Regression: two distinct shapes sharing one op name used to
        # overwrite each other in per_op_latency (keyed by name alone),
        # leaving the sum inconsistent with the recorded per-op entries.
        g = ModelGraph("twin", batch=8)
        g.add(ops.matmul(256, 128, 256, "mm"), count=1)
        g.add(ops.matmul(512, 128, 256, "mm"), count=1)
        run = compile_and_time(g, VendorLibrary(hw))
        assert len(run.per_op_latency) == 2
        assert run.latency_s == pytest.approx(sum(run.per_op_latency.values()))

    def test_method_name_defaults_to_compiler(self, hw, tiny_model):
        run = compile_and_time(tiny_model, Roller(hw))
        assert run.method == "roller"

    def test_compile_cost_summed(self, hw, tiny_model):
        run = compile_and_time(tiny_model, Roller(hw))
        assert run.compile_seconds > 0


class TestDynamicScenario:
    def _factory(self, cycle):
        g = ModelGraph(f"m{cycle}", batch=16)
        g.add(ops.matmul(256, 128 * (cycle + 1), 256, "mm"))
        return g

    def test_segments_alternate(self, hw):
        scenario = DynamicScenario(self._factory, cycles=2, frames_per_stage=64)
        segments = scenario.run(Roller(hw))
        kinds = [s.kind for s in segments]
        assert kinds == ["optimize", "inference", "optimize", "inference"]

    def test_no_reoptimize_compiles_once(self, hw):
        # Regression: reoptimize=False used to recompile every cycle
        # anyway (and silently drop the one-off initial compile cost).
        class Counting:
            def __init__(self, inner):
                self.inner = inner
                self.calls = 0

            def compile(self, compute, measurer=None):
                self.calls += 1
                return self.inner.compile(compute, measurer)

        counting = Counting(PyTorchEager(hw))
        scenario = DynamicScenario(self._factory, cycles=3, frames_per_stage=64)
        segments = scenario.run(counting, "pytorch", reoptimize=False)
        assert counting.calls == 1  # cycle 0 only; later cycles reuse it
        opts = [s for s in segments if s.kind == "optimize"]
        # the one-off compile appears as the initial optimize segment
        assert len(opts) <= 1
        if opts:
            assert segments[0] is opts[0]
        infers = [s for s in segments if s.kind == "inference"]
        assert len(infers) == 3
        # no re-adaptation: every stage dispatches the cycle-0 kernels
        assert all(
            s.duration_s == pytest.approx(infers[0].duration_s) for s in infers
        )

    def test_timeline_is_contiguous(self, hw):
        scenario = DynamicScenario(self._factory, cycles=2, frames_per_stage=64)
        segments = scenario.run(Roller(hw))
        clock = 0.0
        for seg in segments:
            assert seg.start_s == pytest.approx(clock)
            clock = seg.end_s
        assert DynamicScenario.total_time(segments) == pytest.approx(clock)

    def test_invalid_cycles(self):
        with pytest.raises(ValueError, match="cycles"):
            DynamicScenario(self._factory, cycles=0)

    def test_frames_scale_inference_time(self, hw):
        short = DynamicScenario(self._factory, cycles=1, frames_per_stage=64)
        long = DynamicScenario(self._factory, cycles=1, frames_per_stage=640)
        t_short = [s for s in short.run(Roller(hw)) if s.kind == "inference"][0]
        t_long = [s for s in long.run(Roller(hw)) if s.kind == "inference"][0]
        assert t_long.duration_s == pytest.approx(t_short.duration_s * 10)
