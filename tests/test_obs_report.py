"""Traced construction walks: event semantics, report, Chrome export.

These are the acceptance checks of the observability layer: the trace's
per-step probabilities are a distribution, its step count equals the
walk's reported iteration count, and tracing does not perturb the walk.
"""

import json

import pytest

from repro.core import DynamicGensor, Gensor, GensorConfig
from repro.ir import operators as ops
from repro.obs import (
    JsonlTracer,
    RecordingTracer,
    load_events,
    render_report,
    summarize_walk,
    to_chrome_trace,
    trace_report,
    write_chrome_trace,
)
from repro.sim.measure import Measurer

CFG = GensorConfig(
    seed=3, num_chains=2, top_k=4, polish_steps=8, max_iterations_per_chain=50
)


@pytest.fixture(scope="module")
def traced(hw):
    tracer = RecordingTracer()
    compute = ops.matmul(128, 64, 96, "obs_gemm")
    result = Gensor(hw, CFG).compile(compute, tracer=tracer)
    return tracer, result


class TestWalkEvents:
    def test_step_count_matches_reported_iterations(self, traced):
        tracer, result = traced
        assert len(tracer.by_name("walk_step")) == result.iterations

    def test_per_step_probabilities_sum_to_one(self, traced):
        tracer, _ = traced
        for event in tracer.by_name("walk_step"):
            probs = [a["prob"] for a in event.args["actions"]]
            assert all(p >= 0.0 for p in probs)
            assert sum(probs) == pytest.approx(1.0, abs=1e-9)

    def test_chosen_action_is_among_candidates(self, traced):
        tracer, _ = traced
        for event in tracer.by_name("walk_step"):
            assert 0 <= event.args["chosen"] < len(event.args["actions"])

    def test_temperature_anneals_within_chain(self, traced):
        tracer, _ = traced
        by_chain = {}
        for event in tracer.by_name("walk_step"):
            by_chain.setdefault(event.args["chain"], []).append(
                event.args["temperature"]
            )
        for temps in by_chain.values():
            assert temps == sorted(temps, reverse=True)

    def test_chain_end_and_compile_events(self, traced):
        tracer, result = traced
        ends = tracer.by_name("chain_end")
        assert len(ends) == CFG.num_chains
        compiles = tracer.by_name("compile")
        assert len(compiles) == 1
        assert compiles[0].args["iterations"] == result.iterations
        assert compiles[0].dur > 0

    def test_measure_events_cover_shortlist(self, traced):
        tracer, result = traced
        measures = tracer.by_name("measure")
        assert len(measures) == len(result.top_results)
        for event in measures:
            assert event.args["latency_s"] > 0
            assert 0.0 <= event.args["l2_hit_rate"] <= 1.0

    def test_polish_events_report_improvement(self, traced):
        tracer, _ = traced
        polishes = tracer.by_name("polish")
        assert polishes
        for event in polishes:
            assert event.args["steps"] <= event.args["max_steps"]
            assert (
                event.args["latency_after_s"] <= event.args["latency_before_s"]
            )


class TestTraceInvariance:
    def test_tracing_does_not_perturb_the_walk(self, hw, traced):
        _, result = traced
        untraced = Gensor(hw, CFG).compile(ops.matmul(128, 64, 96, "obs_gemm"))
        assert untraced.best.key() == result.best.key()
        assert untraced.iterations == result.iterations
        assert [s.key() for s in untraced.top_results] == [
            s.key() for s in result.top_results
        ]


class TestDynamicTracing:
    def test_sources_traced(self, hw):
        tracer = RecordingTracer()
        dyn = DynamicGensor(hw, CFG)
        compute = ops.matmul(96, 64, 96, "obs_dyn")
        dyn.compile(compute, tracer=tracer)  # cold
        dyn.compile(compute, tracer=tracer)  # exact hit
        dyn.compile(ops.matmul(112, 64, 96, "obs_dyn_b"), tracer=tracer)  # warm
        sources = [e.args["source"] for e in tracer.by_name("dynamic_serve")]
        assert sources == ["cold", "hit", "warm"]


class TestMeasurerTracing:
    def test_measure_event_per_call(self, hw, gemm_state):
        tracer = RecordingTracer()
        measurer = Measurer(hw, noise_sigma=0.0, tracer=tracer)
        measurer.measure(gemm_state)
        measurer.measure(gemm_state)
        assert len(tracer.by_name("measure")) == 2
        assert measurer.num_measurements == 2


class TestReport:
    def test_summary_fields(self, traced):
        tracer, result = traced
        summary = summarize_walk(tracer.events)
        assert summary["steps"] == result.iterations
        assert summary["chains"] == CFG.num_chains
        assert 0.0 <= summary["acceptance_rate"] <= 1.0
        assert summary["prob_sum_err_max"] < 1e-9
        assert sum(summary["action_mix"].values()) == result.iterations
        assert summary["measurements"] == len(result.top_results)
        # Both chains crossed to the innermost level.
        assert summary["convergence_step_mean"] is not None

    def test_render_report(self, traced):
        tracer, _ = traced
        text = render_report(summarize_walk(tracer.events))
        assert "walk steps" in text
        assert "acceptance rate" in text
        assert "convergence step (mean)" in text

    def test_trace_report_from_jsonl(self, hw, tmp_path):
        path = str(tmp_path / "walk.jsonl")
        with JsonlTracer(path) as tracer:
            Gensor(hw, CFG).compile(
                ops.matmul(64, 64, 64, "obs_jsonl"), tracer=tracer
            )
        text = trace_report(path)
        assert "walk steps" in text
        assert path in text


class TestChromeExport:
    def test_export_shape(self, traced):
        tracer, _ = traced
        doc = to_chrome_trace(tracer.events)
        events = doc["traceEvents"]
        # metadata record + one record per event
        assert len(events) == len(tracer.events) + 1
        phases = {e["ph"] for e in events}
        assert phases == {"M", "i", "X"}
        for record in events:
            if record["ph"] == "X":
                assert record["dur"] > 0

    def test_write_from_jsonl_path(self, hw, tmp_path):
        src = str(tmp_path / "walk.jsonl")
        out = str(tmp_path / "chrome.json")
        with JsonlTracer(src) as tracer:
            Gensor(hw, CFG).compile(
                ops.matmul(64, 64, 64, "obs_chrome"), tracer=tracer
            )
        n = write_chrome_trace(src, out)
        assert n == len(load_events(src))
        doc = json.load(open(out))
        assert len(doc["traceEvents"]) == n + 1
