"""Gensor's internal analytical roofline."""

import math

import pytest

from repro.core.score import quick_latency, quick_score
from repro.ir import operators as ops
from repro.ir.etir import ETIR


@pytest.fixture
def gemm():
    return ops.matmul(2048, 1024, 2048, "g")


class TestQuickLatency:
    def test_finite_for_feasible(self, hw, gemm):
        s = ETIR.from_tiles(gemm, {"i": 64, "j": 64, "k": 32}, {"i": 4, "j": 4})
        assert math.isfinite(quick_latency(s, hw))

    def test_infinite_for_strict_infeasible(self, hw, gemm):
        s = ETIR.from_tiles(gemm, {"i": 128, "j": 128})  # 16k threads
        assert quick_latency(s, hw) == math.inf
        assert math.isfinite(quick_latency(s, hw, strict=False))

    def test_prefers_tuned_over_naive(self, hw, gemm):
        naive = ETIR.from_tiles(gemm, {"j": 256})
        tuned = ETIR.from_tiles(
            gemm, {"i": 128, "j": 128, "k": 32}, {"i": 8, "j": 8, "k": 4}
        )
        assert quick_latency(tuned, hw) < quick_latency(naive, hw)

    def test_penalizes_poor_coalescing(self, hw, gemm):
        narrow_k = ETIR.from_tiles(gemm, {"i": 64, "j": 64, "k": 1}, {"i": 8, "j": 8})
        wide_k = ETIR.from_tiles(gemm, {"i": 64, "j": 64, "k": 32}, {"i": 8, "j": 8})
        assert quick_latency(wide_k, hw) < quick_latency(narrow_k, hw)

    def test_lower_bounded_by_compute_roofline(self, hw, gemm):
        s = ETIR.from_tiles(
            gemm, {"i": 128, "j": 128, "k": 32}, {"i": 8, "j": 8, "k": 4}
        )
        assert quick_latency(s, hw) >= gemm.total_flops / hw.peak_flops


class TestQuickScore:
    def test_inverse_relation(self, hw, gemm):
        s = ETIR.from_tiles(gemm, {"i": 64, "j": 64, "k": 32}, {"i": 4, "j": 4})
        assert quick_score(s, hw) == pytest.approx(
            gemm.total_flops / quick_latency(s, hw)
        )

    def test_zero_for_infeasible(self, hw, gemm):
        s = ETIR.from_tiles(gemm, {"i": 128, "j": 128})
        assert quick_score(s, hw) == 0.0
