"""Resilience under chaos: retries, breakers, crashes, and RNG parity.

The acceptance story: under a standard chaos plan the service completes
the trace with >= 99% non-error responses (degraded counts as success),
zero stuck workers, and byte-identical schedules to the fault-free run
for every request that never hit a fault.
"""

import os
import threading
import time
from types import SimpleNamespace

import pytest

from repro.core.cache import family_fingerprint
from repro.core.constructor import GensorConfig
from repro.ir import operators as ops
from repro.obs.metrics import MetricsRegistry
from repro.resilience.breaker import BreakerConfig
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedWorkerCrash,
)
from repro.resilience.retry import RetryPolicy
from repro.serve.bench import run_serve_bench
from repro.serve.service import MAX_CRASH_REQUEUES, CompileService


def tiny_config(seed=0):
    return GensorConfig(
        seed=seed, num_chains=1, top_k=2, polish_steps=2,
        max_iterations_per_chain=8,
    )


def gemm(m=64, k=32, n=64, name="op"):
    return ops.matmul(m, k, n, name)


GEMM_FAMILY = family_fingerprint(gemm())

FAST_RETRY = RetryPolicy(
    max_attempts=3, base_backoff_s=0.001, max_backoff_s=0.002,
    jitter=0.5, attempt_timeout_s=5.0,
)


def make_service(hw, plan=None, **kwargs):
    registry = MetricsRegistry()
    injector = (
        FaultInjector(plan, registry=registry) if plan is not None else None
    )
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("queue_capacity", 16)
    kwargs.setdefault("warm_polish_steps", 2)
    kwargs.setdefault("degraded_polish_steps", 2)
    kwargs.setdefault("retry", FAST_RETRY)
    service = CompileService(
        hw, tiny_config(), registry=registry, fault_injector=injector,
        **kwargs,
    )
    return service, registry


class TestRetryRecovery:
    def test_first_attempt_fault_is_retried_to_success(self, hw):
        plan = FaultPlan(
            faults=(FaultSpec(kind="raise", attempts=(0,), rate=1.0),)
        )
        service, registry = make_service(hw, plan)
        with service:
            response = service.serve(gemm(), timeout=30.0)
        assert response.ok and response.tier == "cold"
        snap = service.stats.snapshot()
        assert snap["retries"] == 1
        assert registry.counter(
            "resilience_faults_injected_total", kind="raise"
        ).value == 1

    def test_hang_is_cancelled_by_attempt_timeout(self, hw):
        plan = FaultPlan(
            faults=(FaultSpec(kind="hang", attempts=(0,), seconds=30.0),)
        )
        service, _ = make_service(
            hw, plan,
            retry=RetryPolicy(
                max_attempts=2, base_backoff_s=0.001, max_backoff_s=0.002,
                attempt_timeout_s=0.05,
            ),
        )
        t0 = time.perf_counter()
        with service:
            response = service.serve(gemm(), timeout=30.0)
        # the hang was reclaimed by the per-attempt deadline, not waited out
        assert time.perf_counter() - t0 < 10.0
        assert response.ok
        assert service.stats.snapshot()["retries"] >= 1

    def test_corrupt_cache_fault_recovers_by_recompiling(self, hw):
        plan = FaultPlan(
            faults=(FaultSpec(kind="corrupt-cache", attempts=(0,), rate=1.0),)
        )
        service, _ = make_service(hw, plan)
        with service:
            first = service.serve(gemm(), timeout=30.0)
            second = service.serve(gemm(), timeout=30.0)
        assert first.ok and first.tier == "cold"
        # the poisoned entry forced a recompile instead of a cache hit —
        # and never crashed the service
        assert second.ok and second.tier == "cold"
        entry = service.cache.get(gemm())
        assert entry is not None and entry.latency_s < float("inf")


@pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)
class TestWorkerCrash:
    def test_request_survives_one_crash(self, hw):
        service, registry = make_service(hw)
        calls = []
        lock = threading.Lock()

        def crashy(compute, measurer=None, cancel=None, **kwargs):
            with lock:
                calls.append(compute)
                first = len(calls) == 1
            if first:
                raise InjectedWorkerCrash("injected")
            return SimpleNamespace(source="cold", result=None)

        service.dynamic.compile = crashy
        response = service.submit(gemm()).result(timeout=30.0)
        # the other worker serves the requeued ticket immediately; give
        # the supervisor a beat to notice and replace the dead thread
        deadline = time.monotonic() + 5.0
        while (
            service.pool.respawns["dead"] < 1
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        service.close()
        assert response.ok and response.tier == "cold"
        assert len(calls) == 2  # crashed once, requeued, served
        assert registry.counter("resilience_worker_crashes_total").value == 1
        assert service.pool.respawns["dead"] >= 1
        assert service.stats.snapshot()["worker_respawns"] >= 1

    def test_repeated_crashes_bound_the_requeue_loop(self, hw):
        plan = FaultPlan(faults=(FaultSpec(kind="crash", rate=1.0),))
        service, registry = make_service(
            hw, plan, breaker=BreakerConfig(failure_threshold=100)
        )
        with service:
            response = service.submit(gemm()).result(timeout=60.0)
        assert not response.ok
        assert response.tier == "failed" and response.reason == "worker_crash"
        crashes = registry.counter("resilience_worker_crashes_total").value
        assert crashes == MAX_CRASH_REQUEUES + 1  # initial + capped requeues


class TestCircuitBreaker:
    def poisoned(self, hw):
        plan = FaultPlan(faults=(FaultSpec(kind="raise", rate=1.0),))
        return make_service(
            hw, plan,
            breaker=BreakerConfig(failure_threshold=2, cooldown_s=600.0),
        )

    def test_poisoned_family_sheds_to_degraded(self, hw):
        service, registry = self.poisoned(hw)
        with service:
            first = service.serve(gemm(), timeout=30.0)
            second = service.serve(gemm(128, 32, 64, "b"), timeout=30.0)
        # request 1 burned through the threshold and was shed mid-retry;
        # request 2 was shed instantly without a single compile attempt
        assert first.ok and first.degraded
        assert second.ok and second.degraded
        assert second.reason == "circuit_open"
        assert service.breakers.states() == {GEMM_FAMILY: "open"}
        assert service.stats.snapshot()["breaker_opens"] == 1
        assert registry.counter("resilience_breaker_shed_total").value >= 1
        # shed requests skip backfill: it would burn the protected workers
        assert service.stats.snapshot()["backfilled"] == 0

    def test_transitions_are_counted_per_family(self, hw):
        service, registry = self.poisoned(hw)
        with service:
            service.serve(gemm(), timeout=30.0)
        assert registry.counter(
            "resilience_breaker_transitions_total",
            family=GEMM_FAMILY, to="open",
        ).value == 1


#: the CI chaos job sweeps this (matrix of 0/1/2); faults re-roll per
#: seed while the request trace itself stays fixed.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


class TestChaosBench:
    """The acceptance run, scaled down for CI speed: sequential replay so
    schedules are order-deterministic, chaos vs fault-free parity."""

    PLAN = FaultPlan(
        faults=(
            FaultSpec(kind="crash", family="gemm[i:s,j:s,k:r]",
                      rate=0.1, attempts=(0,)),
            FaultSpec(kind="raise", rate=0.2, attempts=(0,)),
        ),
        seed=CHAOS_SEED,
    )

    def run(self, plan=None):
        return run_serve_bench(
            model="bert",
            num_requests=24,
            workers=1,
            window=1,
            seed=0,
            time_scale=0.0,
            config=tiny_config(0),
            fault_plan=plan,
            retry=FAST_RETRY,
        )

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_chaos_run_meets_acceptance_bars(self, request):
        clean = self.run(plan=None)
        chaos = self.run(plan=self.PLAN)
        # fired some chaos, and still served (almost) everything
        assert chaos.resilience["faults_injected"] > 0
        assert chaos.availability >= 0.99
        assert chaos.resilience["workers_abandoned"] == 0  # no stuck workers
        # RNG-stream parity: every request that never hit a fault got the
        # byte-identical schedule the fault-free replay produced.
        assert len(clean.schedules) == len(chaos.schedules)
        compared = 0
        for (fp_clean, sched_clean), (fp_chaos, sched_chaos) in zip(
            clean.schedules, chaos.schedules
        ):
            assert fp_clean == fp_chaos  # same trace either way
            if fp_chaos in chaos.faulted_keys:
                continue
            assert sched_clean == sched_chaos, fp_clean
            compared += 1
        assert compared > 0  # the parity claim was actually exercised
