"""Concurrency stress: hammer CompileService with duplicate shapes.

Sixteen threads release simultaneously (a barrier) against the same
shape; single-flight dedup must coalesce all but one, no response may be
lost, and the MetricsRegistry totals must agree with ServiceStats.
"""

import threading

import pytest

from repro.core import GensorConfig
from repro.ir import operators as ops
from repro.obs import MetricsRegistry, RecordingTracer
from repro.serve import CompileService
from repro.serve.request import TIERS
from repro.sim.measure import Measurer

CHEAP = GensorConfig(
    seed=11, num_chains=1, top_k=2, polish_steps=4, max_iterations_per_chain=20
)

THREADS = 16


def make_service(hw, registry, tracer=None, **kwargs):
    return CompileService(
        hw,
        CHEAP,
        workers=4,
        registry=registry,
        tracer=tracer,
        # Slow enough that followers pile onto the in-flight leader.
        measurer_factory=lambda: Measurer(
            hw, noise_sigma=0.0, seconds_per_measurement=0.02, time_scale=1.0
        ),
        **kwargs,
    )


class TestSingleFlightStampede:
    def test_duplicate_shape_coalesces_and_loses_nothing(self, hw):
        registry = MetricsRegistry()
        tracer = RecordingTracer()
        service = make_service(hw, registry, tracer=tracer)
        barrier = threading.Barrier(THREADS)
        responses = [None] * THREADS

        def client(i):
            barrier.wait()
            compute = ops.matmul(128, 64, 96, "stampede")
            responses[i] = service.serve(compute, timeout=60.0)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        service.close()

        # Every client got an answer, and they all agree.
        assert all(r is not None and r.ok for r in responses)
        keys = {r.result.best.key() for r in responses}
        assert len(keys) == 1
        coalesced = [r for r in responses if r.coalesced]
        assert len(coalesced) == THREADS - 1

        snap = service.stats.snapshot()
        assert snap["submitted"] == THREADS
        assert snap["coalesced"] == THREADS - 1
        assert sum(snap[t] for t in TIERS) == THREADS

        # Registry totals match ServiceStats.
        assert registry.counter("serve_submitted_total").value == THREADS
        assert registry.total("serve_responses_total") == THREADS
        assert registry.counter("serve_coalesced_total").value == THREADS - 1
        lat = registry.histogram("serve_latency_seconds").summary()
        assert lat["count"] == len([r for r in responses if r.ok])

        # Exactly one walk actually ran; the serve events record the
        # coalesced followers on the leader.
        serve_events = tracer.by_name("serve")
        assert len(serve_events) == 1
        assert serve_events[0].args["coalesced_followers"] == THREADS - 1
        assert serve_events[0].args["queue_wait_s"] >= 0.0

    def test_mixed_shapes_under_load(self, hw):
        registry = MetricsRegistry()
        service = make_service(hw, registry)
        shapes = [
            ops.matmul(64 + 32 * (i % 3), 64, 96, f"mix_{i % 3}")
            for i in range(2 * THREADS)
        ]
        barrier = threading.Barrier(len(shapes))
        responses = [None] * len(shapes)

        def client(i):
            barrier.wait()
            responses[i] = service.serve(shapes[i], timeout=120.0)

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(len(shapes))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        service.close()

        assert all(r is not None for r in responses), "lost a response"
        assert all(r.ok for r in responses)

        snap = service.stats.snapshot()
        assert snap["submitted"] == len(shapes)
        assert sum(snap[t] for t in TIERS) == len(shapes)
        assert registry.counter("serve_submitted_total").value == len(shapes)
        assert registry.total("serve_responses_total") == len(shapes)
        assert (
            registry.counter("serve_coalesced_total").value
            == snap["coalesced"]
        )
        ok = [r for r in responses if r.ok]
        assert (
            registry.histogram("serve_latency_seconds").summary()["count"]
            == len(ok)
        )
        # Queue-wait histogram saw every request that reached a worker
        # (leaders only; followers never enter the queue).
        waits = registry.histogram("serve_queue_wait_seconds").summary()
        assert waits["count"] == len(shapes) - snap["coalesced"]

    def test_submissions_after_close_are_refused_not_lost(self, hw):
        registry = MetricsRegistry()
        service = make_service(hw, registry)
        service.close()
        response = service.serve(ops.matmul(64, 64, 64, "late"))
        assert not response.ok
        assert response.tier == "rejected"
        assert registry.total("serve_responses_total") == 1
