"""Planted violation: a wire payload carrying a fork-hostile resource."""

import threading
from dataclasses import dataclass, field


@dataclass
class BadWirePayload:
    request_id: int
    guard: threading.Lock = field(default_factory=threading.Lock)
