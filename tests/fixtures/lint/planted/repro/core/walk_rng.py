"""Planted violation: a walk-zone module drawing from the global RNG."""

import random


def pick_candidate(candidates):
    # exactly one determinism:global-rng finding
    return random.choice(candidates)
