"""A clean walk-zone module: seeded RNG, sorted iteration, narrow excepts."""

import numpy as np


def pick_candidate(candidates, seed):
    rng = np.random.default_rng(seed)
    ordered = sorted(candidates)
    return ordered[int(rng.integers(len(ordered)))]


def safe_parse(text):
    try:
        return int(text)
    except ValueError:
        return None
