"""Cross-module integration: the full pipeline and the headline orderings."""

import numpy as np
import pytest

from repro.baselines import Ansor, AnsorConfig, Roller, VendorLibrary
from repro.codegen import emit_cuda, lower_etir
from repro.core import Gensor, GensorConfig
from repro.ir import operators as ops
from repro.sim.executor import execute_tiled

FAST_GENSOR = GensorConfig(num_chains=2, top_k=6, polish_steps=40)


class TestFullPipeline:
    """operator -> Gensor -> schedule -> lowering -> source, with the
    winning schedule verified against the functional oracle."""

    def test_compile_lower_emit_execute(self, hw):
        g = ops.matmul(64, 48, 80, "pipeline")
        res = Gensor(hw, FAST_GENSOR).compile(g)
        # The winning schedule computes the right values...
        inputs = g.random_inputs()
        out = execute_tiled(res.best, inputs)
        assert np.allclose(out, inputs["A"] @ inputs["B"])
        # ...and lowers to a complete kernel.
        kernel = lower_etir(res.best)
        src = emit_cuda(kernel, g)
        assert "__global__" in src and "pipeline_kernel" in src

    def test_winning_conv_schedule_is_correct(self, hw):
        g = ops.conv2d(2, 4, 10, 10, 8, 3, 3, 1, "conv_pipe")
        res = Gensor(hw, FAST_GENSOR).compile(g)
        inputs = g.random_inputs()
        out = execute_tiled(res.best, inputs)
        assert np.allclose(out, g.evaluate(inputs))

    def test_roller_winner_also_correct(self, hw):
        g = ops.matmul(64, 48, 80, "roller_pipe")
        res = Roller(hw).compile(g)
        inputs = g.random_inputs()
        out = execute_tiled(res.best, inputs)
        assert np.allclose(out, inputs["A"] @ inputs["B"])


class TestHeadlineOrderings:
    """The relative results every figure relies on, at test-sized budgets."""

    @pytest.fixture(scope="class")
    def results(self, hw):
        g = ops.matmul(4096, 1024, 4096, "headline")
        return {
            "gensor": Gensor(hw, FAST_GENSOR).compile(g),
            "roller": Roller(hw).compile(g),
            "ansor": Ansor(hw, AnsorConfig(num_trials=250)).compile(g),
            "cublas": VendorLibrary(hw).compile(g),
        }

    def test_gensor_beats_roller(self, results):
        assert (
            results["gensor"].best_metrics.latency_s
            < results["roller"].best_metrics.latency_s
        )

    def test_gensor_comparable_to_ansor(self, results):
        ratio = (
            results["gensor"].best_metrics.latency_s
            / results["ansor"].best_metrics.latency_s
        )
        assert 0.5 < ratio < 1.5

    def test_construction_much_faster_than_search(self, results):
        assert results["gensor"].compile_seconds < results[
            "ansor"
        ].compile_seconds / 5
        assert results["roller"].compile_seconds < results[
            "gensor"
        ].compile_seconds * 2

    def test_everyone_beats_the_unscheduled_program(self, hw, results):
        from repro.ir.etir import ETIR
        from repro.sim.costmodel import CostModel

        g = results["gensor"].best.compute
        baseline = CostModel(hw).latency(ETIR.initial(g))
        for res in results.values():
            assert res.best_metrics.latency_s < baseline


class TestDevicePortability:
    def test_same_api_both_devices(self, hw, edge_hw):
        g = ops.conv2d(4, 8, 18, 18, 16, 3, 3, 1, "port")
        for device in (hw, edge_hw):
            res = Gensor(device, FAST_GENSOR).compile(g)
            assert res.best.memory_ok(device)

    def test_edge_latency_higher(self, hw, edge_hw):
        g = ops.matmul(2048, 1024, 2048, "port_m")
        cloud = Gensor(hw, FAST_GENSOR).compile(g)
        edge = Gensor(edge_hw, FAST_GENSOR).compile(g)
        assert edge.best_metrics.latency_s > cloud.best_metrics.latency_s
