"""The full-evaluation report aggregator."""

import pytest

from repro.experiments.report import EXPERIMENT_SEQUENCE, Report, generate_report


class TestReport:
    def test_markdown_assembly(self):
        r = Report()
        r.add("fig01", "Table | here", 1.5)
        r.add("fig06", "Another", 2.5)
        md = r.to_markdown()
        assert "## fig01 (1.5s)" in md
        assert "Table | here" in md
        assert r.total_seconds == pytest.approx(4.0)

    def test_sequence_covers_every_experiment_module(self):
        names = {name for name, _k, _e in EXPERIMENT_SEQUENCE}
        expected = {
            "fig01_tree_vs_graph", "fig06_ops_rtx4090", "fig07_ops_orin",
            "table05_breakdown", "table06_ablation", "fig08_compile_time",
            "fig09_end2end", "fig10_tradeoff", "fig11_dynamic_bert",
            "fig12_dynamic_timeline", "memory_overhead",
            "convergence_analysis", "serving_throughput",
        }
        assert names == expected

    def test_generate_report_subset(self):
        # A cheap two-entry slice of the sequence proves the machinery.
        subset = (
            ("fig01_tree_vs_graph", {}, []),
            ("convergence_analysis", {}, []),
        )
        report = generate_report(sequence=subset)
        assert len(report.sections) == 2
        assert report.sections[0][0] == "fig01_tree_vs_graph"
        assert "Fig. 1" in report.sections[0][1]
