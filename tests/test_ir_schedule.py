"""Scheduling primitives (Table I) and the ETIR bridge."""

import pytest

from repro.ir import operators as ops
from repro.ir.etir import ETIR
from repro.ir.loopnest import LoopKind
from repro.ir.schedule import Schedule, ScheduleError


@pytest.fixture
def gemm():
    return ops.matmul(64, 32, 48, "g")


class TestSplit:
    def test_split_extents(self, gemm):
        s = Schedule(gemm)
        outer, inner = s.split("i", 16)
        assert s.axis(outer).extent == 4
        assert s.axis(inner).extent == 16

    def test_split_ceil(self, gemm):
        s = Schedule(gemm)
        outer, inner = s.split("i", 48)
        assert s.axis(outer).extent == 2  # ceil(64/48)

    def test_split_clamps_factor(self, gemm):
        s = Schedule(gemm)
        _outer, inner = s.split("i", 1000)
        assert s.axis(inner).extent == 64

    def test_split_preserves_origin_and_reduce(self, gemm):
        s = Schedule(gemm)
        outer, inner = s.split("k", 8)
        assert s.axis(outer).is_reduce and s.axis(inner).is_reduce
        assert s.axis(outer).origin == "k"

    def test_invalid_factor(self, gemm):
        with pytest.raises(ScheduleError):
            Schedule(gemm).split("i", 0)

    def test_unknown_axis(self, gemm):
        with pytest.raises(ScheduleError, match="no axis"):
            Schedule(gemm).split("zzz", 2)

    def test_logged(self, gemm):
        s = Schedule(gemm)
        s.split("i", 8)
        assert ("split", "i", 8) in s.log


class TestFuse:
    def test_fuse_extents(self, gemm):
        s = Schedule(gemm)
        fused = s.fuse("i", "j")
        assert s.axis(fused).extent == 64 * 48

    def test_fuse_nonadjacent_rejected(self, gemm):
        s = Schedule(gemm)
        with pytest.raises(ScheduleError, match="adjacent"):
            s.fuse("i", "k")

    def test_fuse_mixed_kinds_rejected(self, gemm):
        s = Schedule(gemm)
        with pytest.raises(ScheduleError, match="reduce"):
            s.fuse("j", "k")


class TestTileReorder:
    def test_tile_produces_four_axes(self, gemm):
        s = Schedule(gemm)
        xo, yo, xi, yi = s.tile("i", "j", 8, 8)
        names = s.axis_names()
        assert names.index(xo) < names.index(yo) < names.index(xi) < names.index(yi)

    def test_reorder_swaps(self, gemm):
        s = Schedule(gemm)
        s.reorder("j", "i")
        assert s.axis_names()[:2] == ["j", "i"]

    def test_reorder_duplicate_rejected(self, gemm):
        with pytest.raises(ScheduleError, match="duplicate"):
            Schedule(gemm).reorder("i", "i")


class TestAnnotations:
    def test_unroll(self, gemm):
        s = Schedule(gemm)
        s.unroll("i")
        assert s.axis("i").kind == LoopKind.UNROLL

    def test_vectorize(self, gemm):
        s = Schedule(gemm)
        s.vectorize("j")
        assert s.axis("j").kind == LoopKind.VECTORIZE

    def test_double_annotation_rejected(self, gemm):
        s = Schedule(gemm)
        s.unroll("i")
        with pytest.raises(ScheduleError, match="already annotated"):
            s.vectorize("i")

    def test_bind_block(self, gemm):
        s = Schedule(gemm)
        s.bind("i", LoopKind.BLOCK)
        assert s.grid_dim() == 64

    def test_bind_reduce_rejected(self, gemm):
        with pytest.raises(ScheduleError, match="reduce"):
            Schedule(gemm).bind("k", LoopKind.THREAD)

    def test_bind_serial_rejected(self, gemm):
        with pytest.raises(ScheduleError, match="cannot bind"):
            Schedule(gemm).bind("i", LoopKind.SERIAL)

    def test_set_vthread_logs_primitive(self, gemm):
        s = Schedule(gemm)
        s.set_vthread("i")
        assert ("set_vthread", "i") in s.log
        assert s.num_vthreads() == 64


class TestCacheStages:
    def test_cache_read(self, gemm):
        s = Schedule(gemm)
        s.cache_read("A", "shared", "k")
        assert s.cache_stages[0].tensor == "A"

    def test_cache_read_unknown_tensor_rejected(self, gemm):
        with pytest.raises(ScheduleError, match="not an input"):
            Schedule(gemm).cache_read("Q", "shared", "k")

    def test_cache_read_bad_scope_rejected(self, gemm):
        with pytest.raises(ScheduleError, match="scope"):
            Schedule(gemm).cache_read("A", "texture", "k")

    def test_cache_write(self, gemm):
        s = Schedule(gemm)
        s.cache_write("local", "i")
        assert s.cache_stages[0].tensor == "C"


class TestFromEtir:
    def test_launch_dims_match_state(self, gemm):
        state = ETIR.from_tiles(gemm, {"i": 16, "j": 16, "k": 8}, {"i": 4, "j": 4})
        sched = Schedule.from_etir(state)
        assert sched.grid_dim() == state.num_blocks()
        assert sched.block_dim() == state.threads_per_block()

    def test_vthread_axes_emitted(self, gemm):
        state = ETIR.from_tiles(gemm, {"i": 16}, {"i": 4}, {"i": 2})
        sched = Schedule.from_etir(state)
        assert sched.num_vthreads() == 2

    def test_inputs_staged_once(self, gemm):
        state = ETIR.from_tiles(gemm, {"i": 16, "j": 16, "k": 8}, {"i": 4, "j": 4})
        sched = Schedule.from_etir(state)
        staged = [st.tensor for st in sched.cache_stages]
        assert staged.count("A") == 1 and staged.count("B") == 1
        assert "C" in staged  # cache_write

    def test_primitive_log_contains_table1_ops(self, gemm):
        state = ETIR.from_tiles(gemm, {"i": 16, "j": 16, "k": 8}, {"i": 4, "j": 4})
        sched = Schedule.from_etir(state)
        kinds = {entry[0] for entry in sched.log}
        assert {"split", "unroll", "bind", "reorder", "cache_read"} <= kinds
