"""Table rendering and number formatting."""

import pytest

from repro.utils.tables import Table, format_ratio, format_si


class TestFormatSi:
    def test_tera(self):
        assert format_si(45.2e12) == "45.2T"

    def test_giga(self):
        assert format_si(1.5e9) == "1.5G"

    def test_plain(self):
        assert format_si(3.0) == "3"

    def test_milli(self):
        assert format_si(2.5e-3) == "2.5m"

    def test_negative(self):
        assert format_si(-1.2e6) == "-1.2M"

    def test_nan(self):
        assert format_si(float("nan")) == "nan"

    def test_unit_suffix(self):
        assert format_si(1e12, unit="FLOPS") == "1TFLOPS"


class TestFormatRatio:
    def test_default_digits(self):
        assert format_ratio(1.176) == "1.18x"

    def test_custom_digits(self):
        assert format_ratio(1.5, digits=1) == "1.5x"


class TestTable:
    def test_render_alignment(self):
        t = Table("Op", "FLOPS")
        t.add_row("M1", "45.2T")
        t.add_row("longer-label", "1T")
        out = t.render()
        lines = out.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert all(len(l) == len(lines[0]) for l in lines[1:2])
        assert "M1" in out and "longer-label" in out

    def test_title_rendered_first(self):
        t = Table("A", title="My Title")
        t.add_row("x")
        assert t.render().splitlines()[0] == "My Title"

    def test_wrong_cell_count_raises(self):
        t = Table("A", "B")
        with pytest.raises(ValueError, match="expected 2 cells"):
            t.add_row("only-one")

    def test_float_cells_formatted(self):
        t = Table("v")
        t.add_row(1.23456789)
        assert "1.235" in t.render()

    def test_str_dunder(self):
        t = Table("x")
        t.add_row("y")
        assert str(t) == t.render()
