"""Queue-wait autoscaling: pure policy decisions and the sampling loop."""

import pytest

from repro.fleet.autoscale import AutoscalePolicy, Autoscaler
from repro.obs.metrics import MetricsRegistry

POLICY = AutoscalePolicy(
    min_workers=1, max_workers=4,
    depth_high=2.0, wait_high_s=0.5,
    depth_low=0.25, wait_low_s=0.05,
)


class TestPolicy:
    def test_grows_on_deep_backlog(self):
        assert POLICY.decide(workers=2, depth=5, wait_p95_s=0.0) == 3

    def test_grows_on_long_waits(self):
        assert POLICY.decide(workers=2, depth=0, wait_p95_s=1.0) == 3

    def test_holds_inside_the_band(self):
        assert POLICY.decide(workers=2, depth=2, wait_p95_s=0.1) == 2

    def test_shrinks_only_when_both_signals_low(self):
        assert POLICY.decide(workers=3, depth=0, wait_p95_s=0.0) == 2
        # idle queue but slow waits: hold, don't flap
        assert POLICY.decide(workers=3, depth=0, wait_p95_s=0.2) == 3

    def test_clamped_to_bounds(self):
        assert POLICY.decide(workers=4, depth=100, wait_p95_s=9.0) == 4
        assert POLICY.decide(workers=1, depth=0, wait_p95_s=0.0) == 1

    def test_validates_bounds(self):
        with pytest.raises(ValueError):
            AutoscalePolicy(min_workers=4, max_workers=2)
        with pytest.raises(ValueError):
            AutoscalePolicy(step=0)


class FakePool:
    """Duck-typed SupervisedWorkerPool: roster size + queue depth."""

    def __init__(self, workers=1, depth=0):
        self.num_workers = workers
        self._depth = depth
        self.resized_to = []

    def depth(self):
        return self._depth

    def resize(self, target):
        self.resized_to.append(target)
        self.num_workers = target
        return target


class TestAutoscaler:
    def test_tick_grows_pool_on_backlog(self):
        pool = FakePool(workers=1, depth=10)
        registry = MetricsRegistry()
        scaler = Autoscaler(pool, registry, POLICY)
        assert scaler.tick() == 2
        assert pool.resized_to == [2]
        assert registry.counter(
            "fleet_autoscale_total", direction="up"
        ).value == 1

    def test_tick_shrinks_idle_pool(self):
        pool = FakePool(workers=3, depth=0)
        registry = MetricsRegistry()
        scaler = Autoscaler(pool, registry, POLICY)
        scaler.tick()
        assert pool.num_workers == 2
        assert registry.counter(
            "fleet_autoscale_total", direction="down"
        ).value == 1

    def test_tick_publishes_worker_gauge(self):
        pool = FakePool(workers=2, depth=2)
        registry = MetricsRegistry()
        Autoscaler(pool, registry, POLICY).tick()
        assert registry.gauge("fleet_workers").value == 2

    def test_wait_signal_read_from_histogram(self):
        pool = FakePool(workers=1, depth=0)
        registry = MetricsRegistry()
        for _ in range(20):
            registry.histogram("serve_queue_wait_seconds").observe(2.0)
        scaler = Autoscaler(pool, registry, POLICY)
        assert scaler.tick() == 2

    def test_thread_lifecycle(self):
        pool = FakePool(workers=1, depth=10)
        registry = MetricsRegistry()
        scaler = Autoscaler(pool, registry, POLICY, interval_s=0.01).start()
        try:
            deadline = 200
            while pool.num_workers < 4 and deadline:
                deadline -= 1
                import time

                time.sleep(0.01)
        finally:
            scaler.stop()
        assert pool.num_workers == 4
        assert not scaler._thread.is_alive()
