"""Bank-conflict and coalescing models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware.memory import (
    bank_conflict_factor,
    coalescing_factor,
    smem_transaction_factor,
)


class TestBankConflictFactor:
    def test_within_one_bank_group(self):
        assert bank_conflict_factor(16, 32) == 1.0

    def test_exact_bank_width(self):
        assert bank_conflict_factor(32, 32) == 1.0

    def test_two_groups(self):
        assert bank_conflict_factor(64, 32) == 2.0

    def test_partial_group_rounds_up(self):
        assert bank_conflict_factor(33, 32) == 2.0

    def test_vthreads_reduce_groups(self):
        # Formula 3: ceil(x/W) / ceil(x/(V*W)) with x=128, W=32, V=4 -> 4/1.
        assert bank_conflict_factor(128, 32, 1) == 4.0
        assert bank_conflict_factor(128, 32, 4) == 1.0

    def test_vthreads_saturate(self):
        assert bank_conflict_factor(32, 32, 8) == 1.0

    @pytest.mark.parametrize("bad", [0, -1])
    def test_nonpositive_tile_rejected(self, bad):
        with pytest.raises(ValueError):
            bank_conflict_factor(bad, 32)

    def test_nonpositive_bank_width_rejected(self):
        with pytest.raises(ValueError):
            bank_conflict_factor(8, 0)

    def test_nonpositive_vthreads_rejected(self):
        with pytest.raises(ValueError):
            bank_conflict_factor(8, 32, 0)

    @given(
        x=st.integers(1, 4096),
        w=st.integers(1, 64),
        v=st.integers(1, 16),
    )
    def test_more_vthreads_never_worse(self, x, w, v):
        assert bank_conflict_factor(x, w, v + 1) <= bank_conflict_factor(x, w, v)

    @given(x=st.integers(1, 4096), w=st.integers(1, 64))
    def test_at_least_one_group(self, x, w):
        assert bank_conflict_factor(x, w) >= 1.0


class TestSmemTransactionFactor:
    def test_conflict_free_costs_one(self):
        assert smem_transaction_factor(32, 32) == 1.0

    def test_damped_below_raw_groups(self):
        raw = bank_conflict_factor(256, 32)
        damped = smem_transaction_factor(256, 32)
        assert 1.0 < damped < raw

    @given(x=st.integers(1, 2048), v=st.integers(1, 8))
    def test_always_at_least_one(self, x, v):
        assert smem_transaction_factor(x, 32, v) >= 1.0


class TestCoalescingFactor:
    def test_full_warp_is_ideal(self):
        assert coalescing_factor(32) == 1.0

    def test_wider_than_warp_is_ideal(self):
        assert coalescing_factor(128) == 1.0

    def test_single_element_worst_case(self):
        assert coalescing_factor(1) == 32.0

    def test_half_warp(self):
        assert coalescing_factor(16) == 2.0

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            coalescing_factor(0)

    @given(w=st.integers(1, 256))
    def test_bounded_by_warp(self, w):
        f = coalescing_factor(w)
        assert 1.0 <= f <= 32.0
