"""Family-sticky shard routing: determinism and balance."""

import pytest

from repro.core.cache import family_fingerprint
from repro.fleet.routing import FamilyRouter, stable_shard
from repro.ir import operators as ops

FAMILIES = [
    family_fingerprint(ops.matmul(64, 32, 64, "g")),
    family_fingerprint(ops.gemv(64, 32, "v")),
    family_fingerprint(ops.elementwise((16, 16), "relu", name="e")),
    family_fingerprint(ops.batched_matmul(2, 16, 16, 16, "b")),
]


class TestStableShard:
    def test_deterministic_across_calls(self):
        for family in FAMILIES:
            assert stable_shard(family, 4) == stable_shard(family, 4)

    def test_in_range(self):
        for family in FAMILIES:
            for shards in (1, 2, 3, 8):
                assert 0 <= stable_shard(family, shards) < shards

    def test_independent_of_extents(self):
        # same family string regardless of shape -> same shard
        small = family_fingerprint(ops.matmul(64, 32, 64, "a"))
        large = family_fingerprint(ops.matmul(4096, 4096, 4096, "b"))
        assert stable_shard(small, 8) == stable_shard(large, 8)


class TestFamilyRouter:
    def test_hash_routing_matches_stable_shard(self):
        router = FamilyRouter(4, "hash")
        for family in FAMILIES:
            assert router.route(family) == stable_shard(family, 4)

    def test_sticky_across_repeat_routes(self):
        router = FamilyRouter(4, "least-loaded")
        first = {f: router.route(f, loads=[0, 0, 0, 0]) for f in FAMILIES}
        # later routes ignore load changes: the family is pinned
        for family, shard in first.items():
            assert router.route(family, loads=[9, 9, 9, 0]) == shard

    def test_least_loaded_prefers_idle_shard(self):
        router = FamilyRouter(4, "least-loaded")
        assert router.route(FAMILIES[0], loads=[5, 5, 0, 5]) == 2

    def test_least_loaded_spreads_distinct_families(self):
        router = FamilyRouter(2, "least-loaded")
        loads = [0, 0]
        for family in FAMILIES:
            loads[router.route(family, loads)] += 1
        assert loads == [2, 2]

    def test_assignments_snapshot(self):
        router = FamilyRouter(2, "hash")
        router.route(FAMILIES[0])
        assert FAMILIES[0] in router.assignments()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            FamilyRouter(2, "round-robin")

    def test_shard_count_validated(self):
        with pytest.raises(ValueError):
            FamilyRouter(0, "hash")
