"""Iteration variables and affine expressions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.expr import AffineExpr, IterVar


class TestIterVar:
    def test_basic(self):
        v = IterVar("i", 16)
        assert v.extent == 16
        assert not v.is_reduce

    def test_reduce_kind(self):
        assert IterVar("k", 8, "reduce").is_reduce

    def test_invalid_extent(self):
        with pytest.raises(ValueError, match="extent must be positive"):
            IterVar("i", 0)

    def test_invalid_kind(self):
        with pytest.raises(ValueError, match="kind"):
            IterVar("i", 4, "banana")

    def test_hashable(self):
        assert IterVar("i", 4) == IterVar("i", 4)
        assert hash(IterVar("i", 4)) == hash(IterVar("i", 4))


class TestAffineArithmetic:
    def test_var_times_coefficient(self):
        v = IterVar("h", 10)
        e = v * 2
        assert e.coefficient("h") == 2

    def test_rmul(self):
        v = IterVar("h", 10)
        assert (3 * v).coefficient("h") == 3

    def test_add_var_and_const(self):
        h = IterVar("h", 10)
        r = IterVar("r", 3, "reduce")
        e = h * 2 + r + 1
        assert e.coefficient("h") == 2
        assert e.coefficient("r") == 1
        assert e.const == 1

    def test_add_merges_terms(self):
        h = IterVar("h", 10)
        e = h + h
        assert e.coefficient("h") == 2

    def test_zero_coefficients_dropped(self):
        h = IterVar("h", 10)
        e = h + (h * -1)
        assert e.var_names() == ()
        assert e.const == 0

    def test_scalar_multiplication_distributes(self):
        h = IterVar("h", 10)
        e = (h + 3) * 2
        assert e.coefficient("h") == 2
        assert e.const == 6

    def test_of_int(self):
        e = AffineExpr.of(5)
        assert e.const == 5 and not e.var_names()

    def test_of_passthrough(self):
        h = IterVar("h", 10)
        e = h.as_expr()
        assert AffineExpr.of(e) is e


class TestEvaluate:
    def test_evaluate_scalar(self):
        h = IterVar("h", 10)
        r = IterVar("r", 3, "reduce")
        e = h * 2 + r
        assert e.evaluate({"h": 3, "r": 1}) == 7

    def test_evaluate_missing_var_raises(self):
        h = IterVar("h", 10)
        with pytest.raises(KeyError):
            (h * 2).evaluate({})


class TestExtentUnderTiles:
    def test_identity_axis(self):
        h = IterVar("h", 100)
        assert h.as_expr().extent_under_tiles({"h": 8}) == 8

    def test_strided_conv_index(self):
        # oh*2 + r over tiles oh=4, r=3: span = 2*3 + 1*2 + 1 = 9.
        oh = IterVar("oh", 14)
        r = IterVar("r", 3, "reduce")
        e = oh * 2 + r
        assert e.extent_under_tiles({"oh": 4, "r": 3}) == 9

    def test_missing_tile_defaults_to_one(self):
        h = IterVar("h", 100)
        e = h * 3
        assert e.extent_under_tiles({}) == 1

    @given(
        coef=st.integers(1, 5),
        tile=st.integers(1, 64),
    )
    def test_span_formula(self, coef, tile):
        h = IterVar("h", 1000)
        e = h * coef
        assert e.extent_under_tiles({"h": tile}) == coef * (tile - 1) + 1


class TestRenderAndImmutability:
    def test_render(self):
        h = IterVar("h", 10)
        r = IterVar("r", 3, "reduce")
        assert (h * 2 + r).render() == "2*h + r"

    def test_render_const_only(self):
        assert AffineExpr.of(4).render() == "4"

    def test_terms_frozen(self):
        h = IterVar("h", 10)
        e = h * 2
        with pytest.raises(TypeError):
            e.terms["h"] = 5  # type: ignore[index]

    def test_expr_hashable(self):
        h = IterVar("h", 10)
        assert hash(h * 2 + 1) == hash(h * 2 + 1)
        assert (h * 2 + 1) == (h * 2 + 1)
