"""DeterminismChecker rules, zone gating, and suppression comments."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import DeterminismChecker, run_lint


def lint_source(tmp_path: Path, source: str, rel: str = "repro/core/mod.py"):
    """Lint one synthetic module at ``rel`` (controls the zone)."""
    file = tmp_path / rel
    file.parent.mkdir(parents=True, exist_ok=True)
    file.write_text(textwrap.dedent(source))
    return run_lint([file], tmp_path, checkers=[DeterminismChecker()])


def rules(report) -> list[str]:
    return [f.rule for f in report.new]


def test_global_rng_module_functions_flagged(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import random
        import numpy as np

        def walk():
            a = random.random()
            b = np.random.rand(3)
            random.shuffle([1, 2])
            return a, b
        """,
    )
    assert rules(report) == ["global-rng"] * 3


def test_seeded_generators_allowed(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import random
        import numpy as np

        def walk(seed):
            rng = np.random.default_rng(seed)
            legacy = random.Random(seed)
            return rng, legacy
        """,
    )
    assert report.new == []


def test_unseeded_generators_flagged(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import random
        import numpy as np

        def walk():
            return np.random.default_rng(), random.Random()
        """,
    )
    assert rules(report) == ["global-rng", "global-rng"]


def test_wall_clock_flagged_monotonic_allowed(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import time

        def stamp():
            t0 = time.monotonic()
            t1 = time.perf_counter()
            return time.time() - t0 - t1
        """,
    )
    assert rules(report) == ["wall-clock"]


def test_id_ordering_flagged_dict_key_allowed(tmp_path):
    report = lint_source(
        tmp_path,
        """
        def rank(xs, memo):
            memo[id(xs)] = 1          # identity-keyed lookup: fine
            ordered = sorted(xs, key=lambda x: id(x))  # ordering: not fine
            return ordered
        """,
    )
    assert rules(report) == ["id-ordering"]


def test_id_comparison_flagged_identity_test_allowed(tmp_path):
    report = lint_source(
        tmp_path,
        """
        def cmp(a, b):
            same = id(a) == id(b)     # equality: fine
            return id(a) < id(b)      # ordering: both sides flagged
        """,
    )
    assert rules(report) == ["id-ordering", "id-ordering"]


def test_set_iteration_flagged(tmp_path):
    report = lint_source(
        tmp_path,
        """
        def candidates(xs):
            out = []
            for x in set(xs):
                out.append(x)
            return out + [y for y in {1, 2, 3}]
        """,
    )
    assert rules(report) == ["set-iteration", "set-iteration"]


def test_walk_rules_do_not_apply_outside_walk_zone(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import random

        def jitter():
            return random.random()
        """,
        rel="repro/serve/mod.py",
    )
    assert report.new == []


def test_broad_except_flagged_in_every_zone(tmp_path):
    source = """
        def run(fn):
            try:
                return fn()
            except Exception:
                return None
    """
    for rel in ("repro/core/mod.py", "repro/serve/mod.py"):
        report = lint_source(tmp_path, source, rel=rel)
        assert rules(report) == ["broad-except"], rel


def test_broad_except_with_reraise_allowed(tmp_path):
    report = lint_source(
        tmp_path,
        """
        def run(fn):
            try:
                return fn()
            except Exception:
                raise
        """,
        rel="repro/serve/mod.py",
    )
    assert report.new == []


def test_suppression_comment_silences_matching_rule(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import random

        def walk():
            return random.random()  # repro: ignore[global-rng]
        """,
    )
    assert report.new == []
    assert report.suppressed == 1


def test_suppression_comment_wrong_rule_does_not_silence(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import random

        def walk():
            return random.random()  # repro: ignore[wall-clock]
        """,
    )
    assert rules(report) == ["global-rng"]


def test_bare_suppression_silences_any_rule(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import random

        def walk():
            return random.random()  # repro: ignore
        """,
    )
    assert report.new == []


@pytest.mark.parametrize("alias", ["import numpy as np", "import numpy"])
def test_numpy_alias_normalization(tmp_path, alias):
    prefix = "np" if "as np" in alias else "numpy"
    report = lint_source(
        tmp_path,
        f"""
        {alias}

        def walk():
            return {prefix}.random.randint(10)
        """,
    )
    assert rules(report) == ["global-rng"]
