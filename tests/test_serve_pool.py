"""Bounded priority worker pool."""

import queue
import threading
import time

import pytest

from repro.serve.pool import WorkerPool


class TestWorkerPool:
    def test_executes_submitted_work(self):
        pool = WorkerPool(workers=2, capacity=8)
        done = threading.Event()
        pool.submit_nowait(done.set)
        assert done.wait(5.0)
        pool.shutdown()

    def test_validates_arguments(self):
        with pytest.raises(ValueError, match="workers"):
            WorkerPool(workers=0)
        with pytest.raises(ValueError, match="capacity"):
            WorkerPool(capacity=0)

    def test_higher_priority_runs_first(self):
        pool = WorkerPool(workers=1, capacity=8)
        gate = threading.Event()
        order: list[str] = []
        # Occupy the single worker so the rest queue up and get reordered.
        pool.submit_nowait(lambda: gate.wait(5.0))
        time.sleep(0.1)  # let the worker pick up the blocker
        pool.submit_nowait(lambda: order.append("low"), priority=-5)
        pool.submit_nowait(lambda: order.append("high"), priority=5)
        pool.submit_nowait(lambda: order.append("normal"), priority=0)
        gate.set()
        pool.shutdown(wait=True)
        assert order == ["high", "normal", "low"]

    def test_fifo_within_same_priority(self):
        pool = WorkerPool(workers=1, capacity=8)
        gate = threading.Event()
        order: list[int] = []
        pool.submit_nowait(lambda: gate.wait(5.0))
        time.sleep(0.1)
        for i in range(4):
            pool.submit_nowait(lambda i=i: order.append(i))
        gate.set()
        pool.shutdown(wait=True)
        assert order == [0, 1, 2, 3]

    def test_full_queue_raises(self):
        pool = WorkerPool(workers=1, capacity=1)
        gate = threading.Event()
        pool.submit_nowait(lambda: gate.wait(5.0))
        time.sleep(0.1)  # blocker now holds the worker, queue is empty
        pool.submit_nowait(lambda: None)  # fills the single slot
        with pytest.raises(queue.Full):
            pool.submit_nowait(lambda: None)
        gate.set()
        pool.shutdown()

    def test_submit_after_shutdown_raises(self):
        pool = WorkerPool(workers=1, capacity=4)
        pool.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            pool.submit_nowait(lambda: None)

    def test_shutdown_drains_admitted_work(self):
        pool = WorkerPool(workers=2, capacity=16)
        ran: list[int] = []
        for i in range(10):
            pool.submit_nowait(lambda i=i: ran.append(i))
        pool.shutdown(wait=True)
        assert sorted(ran) == list(range(10))
