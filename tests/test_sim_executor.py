"""Functional executor: tiled execution preserves operator semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import operators as ops
from repro.ir.etir import ETIR
from repro.sim.executor import execute_tiled, tile_ranges


class TestTileRanges:
    def test_even_division(self):
        assert tile_ranges(8, 4) == [(0, 4), (4, 8)]

    def test_overhang_clipped(self):
        assert tile_ranges(10, 4) == [(0, 4), (4, 8), (8, 10)]

    def test_tile_larger_than_extent(self):
        assert tile_ranges(5, 100) == [(0, 5)]

    def test_tile_of_one(self):
        assert tile_ranges(3, 1) == [(0, 1), (1, 2), (2, 3)]


class TestExecuteTiled:
    def _check(self, compute, block, thread=None, vthreads=None):
        state = ETIR.from_tiles(compute, block, thread or {}, vthreads or {})
        inputs = compute.random_inputs()
        ref = compute.evaluate(inputs)
        for level in (state.num_levels, 1):
            out = execute_tiled(state, inputs, level=level)
            assert np.allclose(out, ref), f"level {level} diverged"

    def test_gemm(self):
        self._check(
            ops.matmul(16, 12, 20), {"i": 8, "j": 8, "k": 4}, {"i": 2, "j": 2}
        )

    def test_gemm_uneven_tiles(self):
        self._check(ops.matmul(17, 13, 19), {"i": 5, "j": 7, "k": 4})

    def test_gemv(self):
        self._check(ops.gemv(24, 16), {"i": 8, "n": 4}, {"i": 2})

    def test_conv(self):
        self._check(
            ops.conv2d(2, 3, 8, 8, 4, 3, 3, 1),
            {"n": 1, "f": 2, "oh": 3, "ow": 3, "c": 2, "r": 3, "s": 1},
        )

    def test_strided_conv(self):
        self._check(
            ops.conv2d(1, 2, 9, 9, 2, 3, 3, 2),
            {"n": 1, "f": 2, "oh": 2, "ow": 2, "c": 1, "r": 2, "s": 3},
        )

    def test_avgpool(self):
        self._check(
            ops.avgpool2d(2, 3, 8, 8, 2, 2),
            {"n": 1, "c": 2, "oh": 2, "ow": 4, "fi": 2, "fj": 1},
        )

    def test_dwconv(self):
        self._check(
            ops.depthwise_conv2d(1, 4, 7, 7, 3, 3, 1),
            {"n": 1, "c": 2, "oh": 5, "ow": 2, "r": 3, "s": 3},
        )

    def test_elementwise_relu(self):
        self._check(ops.elementwise((9, 7), "relu"), {"d0": 4, "d1": 3})

    def test_vthread_config_does_not_change_semantics(self):
        self._check(
            ops.matmul(16, 8, 16), {"i": 8, "j": 8, "k": 4},
            {"i": 4, "j": 4}, {"i": 2, "j": 2},
        )

    @settings(max_examples=20, deadline=None)
    @given(
        m=st.integers(2, 12),
        k=st.integers(1, 10),
        n=st.integers(2, 12),
        ti=st.integers(1, 12),
        tj=st.integers(1, 12),
        tk=st.integers(1, 10),
    )
    def test_property_gemm_any_tiling(self, m, k, n, ti, tj, tk):
        g = ops.matmul(m, k, n)
        state = ETIR.from_tiles(g, {"i": ti, "j": tj, "k": tk})
        inputs = g.random_inputs()
        out = execute_tiled(state, inputs)
        assert np.allclose(out, inputs["A"] @ inputs["B"])
