"""Footprint and traffic arithmetic (the fuel of every cost formula)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import operators as ops
from repro.ir.access import (
    access_footprint_elems,
    num_tiles,
    reuse_ratio,
    tile_footprint_bytes,
    tile_traffic_bytes,
)


class TestFootprint:
    def test_gemm_footprints_exact(self):
        g = ops.matmul(64, 32, 48)
        tiles = {"i": 8, "j": 4, "k": 16}
        a_acc, b_acc = g.inputs
        assert access_footprint_elems(a_acc, tiles) == 8 * 16
        assert access_footprint_elems(b_acc, tiles) == 16 * 4

    def test_footprint_clipped_to_tensor(self):
        g = ops.matmul(4, 4, 4)
        a_acc = g.inputs[0]
        assert access_footprint_elems(a_acc, {"i": 100, "k": 100}) == 16

    def test_conv_halo(self):
        g = ops.conv2d(1, 2, 10, 10, 4, 3, 3, 1)
        i_acc = g.inputs[0]
        tiles = {"n": 1, "c": 2, "oh": 4, "ow": 4, "r": 3, "s": 3}
        # spatial span per image dim: 1*(4-1) + 1*(3-1) + 1 = 6 (halo).
        assert access_footprint_elems(i_acc, tiles) == 1 * 2 * 6 * 6

    def test_strided_conv_halo(self):
        g = ops.conv2d(1, 1, 11, 11, 1, 3, 3, 2)
        i_acc = g.inputs[0]
        tiles = {"n": 1, "c": 1, "oh": 2, "ow": 2, "r": 3, "s": 3}
        # span = 2*(2-1) + (3-1) + 1 = 5.
        assert access_footprint_elems(i_acc, tiles) == 25

    def test_tile_footprint_includes_output(self):
        g = ops.matmul(64, 32, 48)
        tiles = {"i": 8, "j": 4, "k": 16}
        with_out = tile_footprint_bytes(g, tiles)
        without = tile_footprint_bytes(g, tiles, include_output=False)
        assert with_out - without == 8 * 4 * 4  # out tile elems * dtype

    def test_repeated_reads_share_storage(self):
        g = ops.add((16, 16))  # two distinct tensors
        tiles = {"d0": 4, "d1": 4}
        assert tile_footprint_bytes(g, tiles, include_output=False) == 2 * 16 * 4


class TestNumTiles:
    def test_exact_division(self):
        g = ops.matmul(64, 32, 48)
        assert num_tiles(g, {"i": 8, "j": 8, "k": 8}) == 8 * 6 * 4

    def test_ceil_division(self):
        g = ops.matmul(10, 10, 10)
        assert num_tiles(g, {"i": 3, "j": 3, "k": 3}) == 4 * 4 * 4

    def test_oversized_tile_clipped(self):
        g = ops.matmul(8, 8, 8)
        assert num_tiles(g, {"i": 100, "j": 100, "k": 100}) == 1


class TestTraffic:
    def test_gemm_traffic_formula(self):
        m, k, n = 64, 32, 48
        g = ops.matmul(m, k, n)
        t = {"i": 8, "j": 8, "k": 8}
        spatial_tiles = (m // 8) * (n // 8)
        reduce_tiles = k // 8
        per_tile_in = (8 * 8 + 8 * 8) * 4
        expected = spatial_tiles * reduce_tiles * per_tile_in + m * n * 4
        assert tile_traffic_bytes(g, t) == expected

    def test_larger_tiles_reduce_traffic(self):
        g = ops.matmul(256, 256, 256)
        small = tile_traffic_bytes(g, {"i": 4, "j": 4, "k": 4})
        large = tile_traffic_bytes(g, {"i": 32, "j": 32, "k": 32})
        assert large < small

    def test_whole_tensor_tile_is_compulsory_traffic(self):
        g = ops.matmul(16, 16, 16)
        t = {"i": 16, "j": 16, "k": 16}
        assert tile_traffic_bytes(g, t) == g.total_io_bytes()

    @given(
        ti=st.sampled_from([1, 2, 4, 8, 16]),
        tj=st.sampled_from([1, 2, 4, 8, 16]),
        tk=st.sampled_from([1, 2, 4, 8, 16]),
    )
    @settings(max_examples=30, deadline=None)
    def test_traffic_at_least_compulsory_output(self, ti, tj, tk):
        g = ops.matmul(16, 16, 16)
        traffic = tile_traffic_bytes(g, {"i": ti, "j": tj, "k": tk})
        assert traffic >= g.output.nbytes


class TestReuseRatio:
    def test_monotone_in_tile_growth_for_gemm(self):
        g = ops.matmul(256, 256, 256)
        r_small = reuse_ratio(g, {"i": 2, "j": 2, "k": 2})
        r_big = reuse_ratio(g, {"i": 32, "j": 32, "k": 32})
        assert r_big > r_small

    def test_positive(self):
        g = ops.gemv(64, 64)
        assert reuse_ratio(g, {"i": 4, "n": 4}) > 0
