"""Batched evaluation parity: every element bit-identical to the scalar path.

The entire golden-trace argument for routing the walk, polish, and rank
through ``evaluate_batch`` / ``quick_latency_batch`` rests on element-wise
bit-identity with the scalar calls — including INFEASIBLE states and both
hardware generations.  These properties pin that contract.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.score import quick_latency, quick_latency_batch
from repro.hardware import orin_nano, rtx4090
from repro.ir import operators as ops
from repro.ir.etir import ETIR
from repro.sim.costmodel import INFEASIBLE, CostModel

RTX = rtx4090()
NANO = orin_nano()
GEMM = ops.matmul(512, 256, 512, "parity_g")

_POW2 = [1, 2, 4, 8, 16, 32, 64, 128, 256]


@st.composite
def tile_states(draw):
    """A (possibly infeasible) schedule state for the parity GEMM.

    Tile sizes are drawn as unconstrained powers of two, so oversized
    block tiles routinely blow the shared-memory budget — exactly the
    INFEASIBLE inputs the batch path must reproduce as such.
    """
    block = {}
    thread = {}
    for name, extent in (("i", 512), ("j", 256), ("k", 512)):
        b = draw(st.sampled_from([t for t in _POW2 if t <= extent]))
        t = draw(st.sampled_from([t for t in _POW2 if t <= b]))
        block[name] = b
        thread[name] = t
    vthread = {}
    if draw(st.booleans()):
        vthread["i"] = draw(st.sampled_from([2, 4]))
    try:
        return ETIR.from_tiles(GEMM, block, thread, vthread)
    except ValueError:
        return None


def batches(min_size=1, max_size=24):
    return st.lists(tile_states(), min_size=min_size, max_size=max_size).map(
        lambda states: [s for s in states if s is not None]
    )


class TestEvaluateBatchParity:
    @settings(max_examples=30, deadline=None)
    @given(states=batches())
    @pytest.mark.parametrize("hw", [RTX, NANO], ids=["rtx4090", "orin_nano"])
    def test_bit_identical_to_scalar(self, hw, states):
        model = CostModel(hw)
        batch = model.evaluate_batch(states)
        assert len(batch) == len(states)
        for state, got in zip(states, batch):
            assert got == model.evaluate(state)

    @settings(max_examples=20, deadline=None)
    @given(states=batches())
    def test_infeasible_states_marked(self, states):
        model = CostModel(RTX)
        batch = model.evaluate_batch(states)
        for state, got in zip(states, batch):
            if not state.memory_ok(RTX):
                assert got is INFEASIBLE
                assert not got.feasible

    def test_empty_batch(self):
        assert CostModel(RTX).evaluate_batch([]) == []

    def test_all_infeasible_batch(self):
        state = ETIR.from_tiles(
            GEMM, {"i": 512, "j": 256, "k": 512}, {"i": 1, "j": 1, "k": 1}
        )
        assert not state.memory_ok(RTX)
        # Wide enough to clear the scalar cut-over into the numpy path.
        batch = CostModel(RTX).evaluate_batch([state] * 20)
        assert all(m is INFEASIBLE for m in batch)


class TestQuickLatencyBatchParity:
    @settings(max_examples=30, deadline=None)
    @given(states=batches(), strict=st.booleans())
    @pytest.mark.parametrize("hw", [RTX, NANO], ids=["rtx4090", "orin_nano"])
    def test_bit_identical_to_scalar(self, hw, states, strict):
        lats = quick_latency_batch(states, hw, strict=strict)
        assert lats.shape == (len(states),)
        for state, got in zip(states, lats):
            want = quick_latency(state, hw, strict=strict)
            assert (got == want) or (math.isinf(got) and math.isinf(want))
