"""The four evaluation networks: structure and FLOP sanity."""

import pytest

from repro.models import bert_small, gpt2, mobilenet_v2, resnet34, resnet50


class TestResNet:
    def test_resnet50_flops_per_image(self):
        g = resnet50(batch=128)
        per_image = g.total_flops / 128
        # ResNet-50 is ~4.1 GMACs = ~8.2 GFLOPs per image.
        assert 6e9 < per_image < 10e9

    def test_resnet34_flops_per_image(self):
        g = resnet34(batch=128)
        per_image = g.total_flops / 128
        assert 5e9 < per_image < 9e9

    def test_resnet50_has_bottleneck_structure(self):
        g = resnet50(batch=8)
        kinds = [inst.compute.kind for inst in g.ops]
        assert kinds.count("conv2d") > 15
        assert "avgpool2d" in kinds
        assert "gemm" in kinds  # classifier

    def test_batch_scales_flops(self):
        assert resnet50(batch=64).total_flops == pytest.approx(
            resnet50(batch=32).total_flops * 2, rel=1e-6
        )

    def test_fc_output_classes(self):
        g = resnet50(batch=4)
        fc = [i.compute for i in g.ops if i.compute.kind == "gemm"][-1]
        assert fc.axis("j").extent == 1000


class TestMobileNet:
    def test_depthwise_present(self):
        g = mobilenet_v2(batch=8)
        kinds = {inst.compute.kind for inst in g.ops}
        assert "dwconv2d" in kinds

    def test_flops_per_image(self):
        g = mobilenet_v2(batch=128)
        per_image = g.total_flops / 128
        # MobileNetV2 ~0.3 GMACs = ~0.6 GFLOPs per image.
        assert 0.4e9 < per_image < 1.0e9

    def test_width_multiplier_scales_work(self):
        slim = mobilenet_v2(batch=8, width_mult=0.5)
        wide = mobilenet_v2(batch=8, width_mult=1.5)
        assert wide.total_flops > 1.5 * slim.total_flops

    def test_width_multiplier_in_name(self):
        assert "w0.75" in mobilenet_v2(batch=8, width_mult=0.75).name

    def test_channels_divisible_by_eight(self):
        g = mobilenet_v2(batch=4, width_mult=0.7)
        for inst in g.ops:
            if inst.compute.kind == "conv2d":
                f = inst.compute.axis("f").extent
                assert f % 8 == 0 or f == 1000


class TestTransformers:
    def test_bert_small_op_inventory(self):
        g = bert_small(batch=32, seq=128)
        kinds = {inst.compute.kind for inst in g.ops}
        assert {"gemm", "bmm", "softmax", "layernorm", "add"} <= kinds

    def test_bert_seq_length_changes_shapes(self):
        a = bert_small(batch=32, seq=128)
        b = bert_small(batch=32, seq=256)
        assert b.total_flops > a.total_flops
        assert a.name != b.name

    def test_bert_layer_counts(self):
        g = bert_small(batch=32, seq=128)
        proj = next(i for i in g.ops if "proj" in i.compute.name)
        assert proj.count == 16  # 4 projections x 4 layers

    def test_gpt2_bigger_than_bert(self):
        bert = bert_small(batch=8, seq=512)
        gpt = gpt2(batch=8, seq=512)
        assert gpt.total_flops > bert.total_flops

    def test_gpt2_lm_head_is_unbalanced_gemm(self):
        g = gpt2(batch=8, seq=512)
        head = next(i.compute for i in g.ops if "lm_head" in i.compute.name)
        assert head.axis("j").extent == 50257
