"""Experiment-module parameter handling (cheap paths only)."""

import pytest

from repro.experiments.fig09_end2end import _models
from repro.experiments.fig08_compile_time import GEMM_SHAPES
from repro.experiments.fig11_dynamic_bert import SEQ_LENGTHS
from repro.experiments.fig12_dynamic_timeline import WIDTH_CYCLE


class TestFig09Models:
    def test_model_factories(self):
        models = _models()
        assert set(models) == {"bert_small", "resnet50", "mobilenetv2", "gpt2"}
        g = models["bert_small"]()
        assert g.batch == 32

    def test_batch_scale_divides(self):
        models = _models(batch_scale=4)
        assert models["resnet50"]().batch == 32


class TestSweepDefinitions:
    def test_fig08_includes_paper_shapes(self):
        assert (8192, 8192, 8192) in GEMM_SHAPES
        assert (65536, 4, 1024) in GEMM_SHAPES

    def test_fig11_sequences_ascend(self):
        assert list(SEQ_LENGTHS) == sorted(SEQ_LENGTHS)
        assert len(SEQ_LENGTHS) >= 4

    def test_fig12_width_cycle(self):
        assert 1.0 in WIDTH_CYCLE
        assert all(w > 0 for w in WIDTH_CYCLE)
