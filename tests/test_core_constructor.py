"""Gensor's construction loop (Algorithm 1) end to end."""

import pytest

from repro.core import Gensor, GensorConfig
from repro.core.score import quick_latency
from repro.ir import operators as ops
from repro.ir.etir import ETIR
from repro.sim.costmodel import CostModel
from repro.sim.measure import Measurer

FAST = GensorConfig(num_chains=2, top_k=6, polish_steps=30)


@pytest.fixture
def gemm():
    return ops.matmul(512, 256, 512, "g512")


class TestConfigValidation:
    def test_bad_cooling(self):
        with pytest.raises(ValueError, match="cooling"):
            GensorConfig(cooling=1.5)

    def test_temperature_below_threshold(self):
        with pytest.raises(ValueError, match="exceed threshold"):
            GensorConfig(initial_temperature=0.001, threshold=1.0)

    def test_bad_chains(self):
        with pytest.raises(ValueError, match="num_chains"):
            GensorConfig(num_chains=0)


class TestCompile:
    def test_best_is_strict_feasible(self, hw, gemm):
        res = Gensor(hw, FAST).compile(gemm)
        assert res.best.memory_ok(hw)
        assert res.best_metrics.feasible

    def test_improves_massively_over_initial(self, hw, gemm):
        res = Gensor(hw, FAST).compile(gemm)
        cm = CostModel(hw)
        initial = cm.latency(ETIR.initial(gemm))
        assert res.best_metrics.latency_s < initial / 10

    def test_deterministic_given_seed(self, hw, gemm):
        a = Gensor(hw, FAST).compile(gemm)
        b = Gensor(hw, FAST).compile(gemm)
        assert a.best.key() == b.best.key()
        assert a.best_metrics.latency_s == b.best_metrics.latency_s

    def test_seed_changes_walk(self, hw, gemm):
        a = Gensor(hw, FAST).compile(gemm)
        b = Gensor(hw, GensorConfig(seed=5, num_chains=2, top_k=6, polish_steps=30)).compile(gemm)
        # Different walks (states visited differ); winners may coincide.
        assert a.states_visited > 0 and b.states_visited > 0

    def test_iterations_counted(self, hw, gemm):
        res = Gensor(hw, FAST).compile(gemm)
        # ~127 iterations per chain at the default cooling schedule.
        assert res.iterations >= 100

    def test_top_results_are_feasible_and_ranked(self, hw, gemm):
        res = Gensor(hw, FAST).compile(gemm)
        cm = CostModel(hw)
        lats = [cm.latency(s) for s in res.top_results]
        assert all(s.memory_ok(hw) for s in res.top_results)
        assert lats == sorted(lats)

    def test_vthread_disabled_produces_no_vthreads(self, hw, gemm):
        cfg = GensorConfig(
            num_chains=2, top_k=6, polish_steps=30, enable_vthread=False
        )
        res = Gensor(hw, cfg).compile(gemm)
        assert res.best.total_vthreads() == 1
        assert all(s.total_vthreads() == 1 for s in res.top_results)

    def test_measurement_accounting(self, hw, gemm):
        meas = Measurer(hw, seconds_per_measurement=0.25)
        res = Gensor(hw, FAST).compile(gemm, meas)
        assert res.simulated_measure_s == pytest.approx(
            meas.num_measurements * 0.25
        )
        assert res.compile_seconds >= res.simulated_measure_s

    def test_result_convenience_properties(self, hw, gemm):
        res = Gensor(hw, FAST).compile(gemm)
        assert res.latency_s == res.best_metrics.latency_s
        assert res.achieved_flops == res.best_metrics.achieved_flops
        assert res.method == "gensor"

    def test_polish_never_hurts(self, hw, gemm):
        unpolished = GensorConfig(num_chains=2, top_k=6, polish_steps=0)
        polished = GensorConfig(num_chains=2, top_k=6, polish_steps=60)
        a = Gensor(hw, unpolished).compile(gemm)
        b = Gensor(hw, polished).compile(gemm)
        assert b.best_metrics.latency_s <= a.best_metrics.latency_s * 1.001

    def test_works_on_edge_device(self, edge_hw, gemm):
        res = Gensor(edge_hw, FAST).compile(gemm)
        assert res.best.memory_ok(edge_hw)

    def test_paper_cooling_variant_runs(self, hw, gemm):
        cfg = GensorConfig(cooling=0.5, num_chains=2, top_k=4, polish_steps=20)
        res = Gensor(hw, cfg).compile(gemm)
        assert res.best_metrics.feasible
        # T halving: ~14 iterations per chain from 100 to 0.01.
        assert res.iterations < 40


class TestMultiWalker:
    def test_walkers_config_validated(self):
        with pytest.raises(ValueError, match="walkers"):
            GensorConfig(walkers=0)

    def test_walkers_call_override_validated(self, hw, gemm):
        with pytest.raises(ValueError, match="walkers"):
            Gensor(hw, FAST).compile(gemm, walkers=0)

    def test_walkers_one_matches_default_path(self, hw, gemm):
        # walkers=1 must consume exactly the historical RNG stream: the
        # explicit override and the plain call are indistinguishable.
        a = Gensor(hw, FAST).compile(gemm)
        b = Gensor(hw, FAST).compile(gemm, walkers=1)
        assert a.best.key() == b.best.key()
        assert a.best_metrics == b.best_metrics
        assert a.iterations == b.iterations
        assert [s.key() for s in a.top_results] == [s.key() for s in b.top_results]

    def test_multi_walker_deterministic_across_runs(self, hw, gemm):
        # Merge order is walker order, not thread completion order, so two
        # runs agree exactly despite scheduling differences.
        cfg = GensorConfig(num_chains=2, top_k=6, polish_steps=30, walkers=3)
        a = Gensor(hw, cfg).compile(gemm)
        b = Gensor(hw, cfg).compile(gemm)
        assert a.best.key() == b.best.key()
        assert a.best_metrics == b.best_metrics
        assert a.iterations == b.iterations
        assert [s.key() for s in a.top_results] == [s.key() for s in b.top_results]

    def test_multi_walker_runs_more_chains(self, hw, gemm):
        one = Gensor(hw, FAST).compile(gemm)
        four = Gensor(hw, FAST).compile(gemm, walkers=4)
        assert four.iterations > one.iterations

    def test_multi_walker_results_feasible_and_ranked(self, hw, gemm):
        res = Gensor(hw, FAST).compile(gemm, walkers=3)
        cm = CostModel(hw)
        lats = [cm.latency(s) for s in res.top_results]
        assert all(s.memory_ok(hw) for s in res.top_results)
        assert lats == sorted(lats)

    def test_multi_walker_never_worse_than_single(self, hw, gemm):
        # The merged pool contains walker 0's pool, so the measured best
        # can only improve on the single-walker result.
        one = Gensor(hw, FAST).compile(gemm)
        four = Gensor(hw, FAST).compile(gemm, walkers=4)
        assert four.best_metrics.latency_s <= one.best_metrics.latency_s * 1.001


class TestAcrossOperatorFamilies:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: ops.gemv(2048, 1024, "v"),
            lambda: ops.conv2d(4, 16, 18, 18, 32, 3, 3, 1, "c"),
            lambda: ops.avgpool2d(8, 16, 32, 32, 2, 2, "p"),
            lambda: ops.batched_matmul(8, 64, 64, 64, "b"),
            lambda: ops.elementwise((4096, 512), "relu", "e"),
        ],
    )
    def test_compiles_every_family(self, hw, factory):
        res = Gensor(hw, FAST).compile(factory())
        assert res.best_metrics.feasible
