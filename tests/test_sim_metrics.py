"""KernelMetrics surface."""

import math

from repro.sim.metrics import KernelMetrics


def _metrics(latency=1e-3):
    return KernelMetrics(
        latency_s=latency,
        achieved_flops=1e12,
        compute_throughput=0.5,
        sm_occupancy=0.4,
        mem_busy=0.2,
        l2_hit_rate=0.9,
    )


class TestKernelMetrics:
    def test_feasible_flag(self):
        assert _metrics().feasible
        assert not _metrics(math.inf).feasible

    def test_summary_contains_units(self):
        text = _metrics().summary()
        assert "ms" in text and "TFLOPS" in text
        assert "occ 40.0%" in text

    def test_frozen(self):
        m = _metrics()
        try:
            m.latency_s = 5.0  # type: ignore[misc]
        except AttributeError:
            return
        raise AssertionError("KernelMetrics should be immutable")

    def test_defaults(self):
        m = _metrics()
        assert m.bank_conflict_factor == 1.0
        assert m.blocks_per_sm == 0
        assert m.waves == 0.0
