"""Experiment harness: structure and fast-path smoke runs.

The heavyweight experiments are exercised by the benchmark suite; here we
run the quick ones end to end and validate the shared infrastructure.
"""

import pytest

from repro.experiments import common
from repro.experiments import (
    convergence_analysis,
    fig01_tree_vs_graph,
    memory_overhead,
    walk_diagnostics,
)
from repro.experiments.fig06_ops_rtx4090 import run as run_fig06
from repro.experiments.op_benchmark import run_op_benchmark


class TestCommon:
    def test_device_lookup(self):
        assert common.device("rtx4090").name == "rtx4090"
        assert common.device("orin_nano").name == "orin_nano"
        with pytest.raises(KeyError):
            common.device("a100")

    def test_resolve_quick_explicit(self):
        assert common.resolve_quick(True) is True
        assert common.resolve_quick(False) is False

    def test_resolve_quick_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert common.resolve_quick(None) is True
        monkeypatch.setenv("REPRO_FULL", "1")
        assert common.resolve_quick(None) is False

    def test_make_methods_lineup(self, hw):
        methods = common.make_methods(hw, quick=True)
        assert set(methods) == {"pytorch", "cublas", "roller", "ansor", "gensor"}


class TestFig01:
    def test_graph_beats_tree(self):
        result = fig01_tree_vs_graph.run()
        assert result.rows["graph_flops"] > result.rows["tree_flops"]
        assert result.rows["gain_pct"] > 0
        assert "Fig. 1" in result.table.title

    def test_render_includes_notes(self):
        result = fig01_tree_vs_graph.run()
        assert "note:" in result.render()


class TestConvergenceAnalysis:
    def test_report_properties(self):
        result = convergence_analysis.run()
        report = result.rows["report"]
        assert all(report.irreducible_per_level.values())
        assert report.aperiodic


class TestMemoryOverhead:
    def test_overhead_is_modest(self):
        result = memory_overhead.run()
        assert result.rows["gensor_mb"] > 0
        assert result.rows["roller_mb"] > 0
        # Tens of MB at most, as the paper reports.
        assert result.rows["overhead_mb"] < 100


class TestWalkDiagnostics:
    def test_quick_run_summaries(self):
        result = walk_diagnostics.run(quick=True)
        assert set(result.rows) == {"walk_gemm", "walk_conv"}
        for summary in result.rows.values():
            assert summary["steps"] > 0
            assert summary["chains"] == 3
            assert summary["prob_sum_err_max"] < 1e-9
        assert "walk_gemm" in result.render()


class TestOpBenchmarkSubset:
    @pytest.mark.slow
    def test_single_label_subset(self):
        result = run_op_benchmark("rtx4090", quick=True, labels=["M8"])
        rows = result.rows["rows"]
        assert len(rows) == 1
        assert rows[0].label == "M8"
        assert rows[0].relative["gensor"] > 0


class TestFig06Wrapper:
    @pytest.mark.slow
    def test_label_passthrough(self):
        result = run_fig06(quick=True, labels=["P1"])
        assert result.rows["rows"][0].label == "P1"
