"""Serve-layer checkpoint/resume: retries and crash requeues pick up the
walk where the failed attempt left it, deadline-aware fail-fast, and the
bounded-wasted-recompute bar surfaced through serve-bench."""

import threading
import time

import pytest

from repro.core.constructor import GensorConfig
from repro.ir import operators as ops
from repro.obs.metrics import MetricsRegistry
from repro.resilience.checkpoint import CheckpointPolicy, WalkCheckpoint
from repro.resilience.deadline import CancelToken, CompileCancelled
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedWorkerCrash,
)
from repro.resilience.retry import RetryPolicy
from repro.serve.bench import run_serve_bench
from repro.serve.service import CompileService

EVERY = 2  # checkpoint cadence: tiny_config walks ~8 steps per compile


def tiny_config(seed=0):
    return GensorConfig(
        seed=seed, num_chains=1, top_k=2, polish_steps=2,
        max_iterations_per_chain=8,
    )


def gemm(m=64, k=32, n=64, name="op"):
    return ops.matmul(m, k, n, name)


FAST_RETRY = RetryPolicy(
    max_attempts=3, base_backoff_s=0.001, max_backoff_s=0.002,
    jitter=0.5, attempt_timeout_s=5.0,
)


class Bomb(CancelToken):
    """A cancel token that trips on its Nth poll (deterministic kill)."""

    def __init__(self, fuse):
        super().__init__(None)
        self.fuse = fuse
        self.checks = 0

    def expired(self):
        self.checks += 1
        return self.checks >= self.fuse


def make_service(hw, plan=None, **kwargs):
    registry = MetricsRegistry()
    injector = (
        FaultInjector(plan, registry=registry) if plan is not None else None
    )
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("queue_capacity", 16)
    kwargs.setdefault("warm_polish_steps", 2)
    kwargs.setdefault("degraded_polish_steps", 2)
    kwargs.setdefault("retry", FAST_RETRY)
    kwargs.setdefault("checkpoint_policy", CheckpointPolicy(every_steps=EVERY))
    service = CompileService(
        hw, tiny_config(), registry=registry, fault_injector=injector,
        **kwargs,
    )
    return service, registry


def record_resumes(service):
    """Wrap ``dynamic.compile`` to log each attempt's ``resume_from``."""
    real = service.dynamic.compile
    seen = []
    lock = threading.Lock()

    def spying(compute, measurer=None, **kwargs):
        with lock:
            seen.append(kwargs.get("resume_from"))
        return real(compute, measurer, **kwargs)

    service.dynamic.compile = spying
    return seen


def fault_free_key(hw):
    service, _ = make_service(hw)
    with service:
        response = service.serve(gemm(), timeout=30.0)
    assert response.ok and response.tier == "cold"
    return response.result.best.key()


class TestRetryResume:
    def test_retry_resumes_from_checkpoint_with_parity(self, hw):
        plan = FaultPlan(
            faults=(FaultSpec(kind="raise", attempts=(0,), rate=1.0),)
        )
        service, registry = make_service(hw, plan)
        resumes = record_resumes(service)
        with service:
            response = service.serve(gemm(), timeout=30.0)
        assert response.ok and response.tier == "cold"
        # attempt 0 started cold, attempt 1 resumed from its checkpoint
        assert resumes[0] is None
        assert isinstance(resumes[1], WalkCheckpoint)
        assert registry.counter("resilience_checkpoints_total").value > 0
        assert (
            registry.counter("resilience_checkpoint_rejected_total").value
            == 0
        )
        # wasted recompute bounded by one checkpoint interval per failure
        assert registry.total("resilience_wasted_states_total") <= EVERY
        # byte parity with the fault-free service
        assert response.result.best.key() == fault_free_key(hw)

    def test_checkpointing_off_still_serves(self, hw):
        plan = FaultPlan(
            faults=(FaultSpec(kind="raise", attempts=(0,), rate=1.0),)
        )
        service, registry = make_service(hw, plan, checkpointing=False)
        resumes = record_resumes(service)
        with service:
            response = service.serve(gemm(), timeout=30.0)
        assert response.ok and response.tier == "cold"
        assert all(r is None for r in resumes)
        assert registry.counter("resilience_checkpoints_total").value == 0
        assert response.result.best.key() == fault_free_key(hw)

    def test_stale_checkpoint_is_rejected_not_resumed(self, hw):
        service, registry = make_service(hw)
        resumes = record_resumes(service)
        # a checkpoint for a different shape must not seed this walk
        other = gemm(32, 32, 32, "foreign")
        state = service.dynamic.gensor.seed_states(other)[0]
        foreign = WalkCheckpoint.for_polish(other, state, steps_done=1)
        with service:
            response = service.submit(
                gemm(), checkpoint=foreign
            ).result(timeout=30.0)
        assert response.ok and response.tier == "cold"
        assert resumes[0] is None
        assert (
            registry.counter("resilience_checkpoint_rejected_total").value
            == 1
        )
        assert response.result.best.key() == fault_free_key(hw)


@pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)
class TestCrashResume:
    def test_crash_requeue_carries_checkpoint(self, hw):
        """A worker crash loses the thread but not the walk: the requeued
        request resumes from the checkpoint banked before the crash."""
        service, registry = make_service(hw)
        real = service.dynamic.compile
        calls = []
        lock = threading.Lock()

        def crashy(compute, measurer=None, **kwargs):
            with lock:
                calls.append(kwargs.get("resume_from"))
                first = len(calls) == 1
            if first:
                # walk part-way (banking mid-walk checkpoints, touching
                # neither cache nor result), then die
                inner = dict(kwargs)
                inner["cancel"] = Bomb(5)
                try:
                    real(compute, measurer, **inner)
                except CompileCancelled:
                    pass
                raise InjectedWorkerCrash("injected")
            return real(compute, measurer, **kwargs)

        service.dynamic.compile = crashy
        response = service.submit(gemm()).result(timeout=30.0)
        deadline = time.monotonic() + 5.0
        while (
            service.pool.respawns["dead"] < 1
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        service.close()
        assert response.ok and response.tier == "cold"
        assert len(calls) == 2
        assert calls[0] is None
        assert isinstance(calls[1], WalkCheckpoint)
        assert registry.counter("resilience_worker_crashes_total").value == 1
        assert response.result.best.key() == fault_free_key(hw)


class TestDeadlineFailFast:
    def test_expired_deadline_skips_attempts(self, hw):
        service, registry = make_service(hw)
        with service:
            response = service.submit(
                gemm(), deadline_s=1e-6
            ).result(timeout=30.0)
        # fail-fast: no compile attempt was bought for a guaranteed miss
        # (zero retries burned); the degraded tiers still answered, and
        # the only dynamic.compile traffic is the async cache backfill
        assert service.stats.snapshot()["retries"] == 0
        assert response.reason == "deadline_exhausted"
        assert (
            registry.total("resilience_deadline_exhausted_total") == 1
        )

    def test_backoff_capped_by_remaining_deadline(self):
        policy = RetryPolicy(
            max_attempts=4, base_backoff_s=10.0, max_backoff_s=10.0,
            jitter=0.5, attempt_timeout_s=30.0,
        )
        free = policy.backoff_s(1, seed=3, family="f")
        capped = policy.backoff_s(1, seed=3, family="f", remaining_s=0.05)
        assert capped <= 0.05
        # the cap trims the sleep *after* the jitter draw, so the jitter
        # stream is consumed identically with and without a deadline
        assert capped == min(free, 0.05)
        assert policy.backoff_s(1, seed=3, family="f", remaining_s=None) == free

    def test_attempt_timeout_bounded_by_remaining(self):
        policy = RetryPolicy(attempt_timeout_s=30.0)
        assert policy.attempt_timeout_for(None) == 30.0
        assert policy.attempt_timeout_for(2.0) == 2.0
        assert policy.attempt_timeout_for(60.0) == 30.0
        unlimited = RetryPolicy(attempt_timeout_s=None)
        assert unlimited.attempt_timeout_for(5.0) == 5.0
        assert unlimited.attempt_timeout_for(None) is None


class TestBenchSurfacing:
    def test_serve_bench_reports_resilience_wasted_states(self):
        plan = FaultPlan(
            faults=(FaultSpec(kind="raise", rate=0.3, attempts=(0,)),),
            seed=0,
        )
        report = run_serve_bench(
            model="bert",
            num_requests=12,
            workers=1,
            window=1,
            seed=0,
            time_scale=0.0,
            config=tiny_config(0),
            fault_plan=plan,
            retry=FAST_RETRY,
        )
        for key in ("wasted_states", "checkpoints", "checkpoint_resumes"):
            assert key in report.resilience
            assert report.resilience[key] >= 0
        assert report.to_json()["resilience"] == report.resilience
