"""Whole-graph program compilation: fusion planning, legality, parity.

Three layers of guarantees:

- **Planning** (:func:`repro.models.program.plan_fusion`): greedy grouping
  follows the model's dataflow order, only groups ops with equal counts
  and matching spatial iteration spaces, and caps chain length.
- **Legality** (ETIR / Schedule): fuse/unfuse are exactly reversible, and
  reduce-axis epilogues are rejected at both the state and schedule layer
  (they need the intermediate materialized).
- **Parity / win**: routing a graph through the program machinery with
  ``fusion=False`` reproduces per-op compilation exactly, and with fusion
  on, BERT batch-1 beats the per-op latency sum by the margin the fusion
  model predicts (>= 10%).
"""

from __future__ import annotations

import pytest

from repro.core import DynamicGensor, Gensor, GensorConfig
from repro.ir import operators as ops
from repro.ir.etir import ETIR
from repro.ir.schedule import Schedule, ScheduleError
from repro.models import (
    ModelGraph,
    bert_small,
    compile_and_time,
    compile_program,
    plan_fusion,
)
from repro.models.program import MAX_EPILOGUES_PER_GROUP

QUICK = GensorConfig(
    seed=0, num_chains=2, top_k=4, polish_steps=20, max_iterations_per_chain=30
)


def anchored(state) -> dict[str, tuple[str, ...]]:
    """Fusion plan as {anchor name: epilogue names} for easy assertions."""
    return {g.anchor.name: tuple(ep.name for ep in g.epilogues) for g in state.groups}


# -- planning -----------------------------------------------------------------


class TestPlanFusion:
    def test_bert_groups_expected_chains(self):
        # seq=128 keeps scores/context distinct shapes (at seq=64 they
        # collapse into one op instance and their counts diverge from
        # softmax's, which correctly blocks that fusion).
        graph = bert_small(batch=1, seq=128)
        plan = plan_fusion(graph)
        groups = anchored(plan)
        tag = graph.name
        # The three classic epilogue chains fuse; the matmul-after-matmul
        # pairs (proj, context, ffn2, pooler) stay single-op anchors.
        assert groups[f"{tag}_scores"] == (f"{tag}_softmax",)
        assert groups[f"{tag}_ffn1"] == (f"{tag}_gelu",)
        assert groups[f"{tag}_ln"] == (f"{tag}_residual",)
        for single in ("proj", "context", "ffn2", "pooler"):
            assert groups[f"{tag}_{single}"] == ()
        assert plan.num_groups == 7
        assert plan.num_fused_ops == 3

    def test_fusion_disabled_yields_single_op_groups(self):
        graph = bert_small(batch=1, seq=64)
        plan = plan_fusion(graph, fusion=False)
        assert plan.num_groups == len(list(graph.ops))
        assert plan.num_fused_ops == 0
        assert all(g.epilogues == () for g in plan.groups)

    def test_count_mismatch_blocks_fusion(self):
        g = ModelGraph("m", batch=1)
        g.add(ops.matmul(32, 16, 32, "mm"), count=2)
        g.add(ops.elementwise((32, 32), "relu", "act"), count=1)
        plan = plan_fusion(g)
        assert anchored(plan) == {"mm": (), "act": ()}

    def test_iteration_space_mismatch_blocks_fusion(self):
        g = ModelGraph("m", batch=1)
        g.add(ops.matmul(32, 16, 32, "mm"))
        g.add(ops.elementwise((32, 64), "relu", "act"))  # 2048 != 1024 pts
        plan = plan_fusion(g)
        assert anchored(plan) == {"mm": (), "act": ()}

    def test_reduce_axis_op_never_joins_a_group(self):
        g = ModelGraph("m", batch=1)
        g.add(ops.matmul(32, 16, 32, "mm1"))
        # Same spatial space as mm1's output, but it reduces — illegal.
        # (Different K so the graph keeps it a distinct op instance.)
        g.add(ops.matmul(32, 8, 32, "mm2"))
        plan = plan_fusion(g)
        assert anchored(plan) == {"mm1": (), "mm2": ()}

    def test_chain_length_capped(self):
        g = ModelGraph("m", batch=1)
        g.add(ops.matmul(32, 16, 32, "mm"))
        # Four spatially-identical epilogue candidates of *distinct kinds*
        # (identical kinds would merge into one instance with count 4).
        chain = [
            ops.elementwise((32, 32), "relu", "act"),
            ops.add((32, 32), "res"),
            ops.softmax_proxy(32, 32, "sm"),
            ops.layernorm_proxy(32, 32, "ln"),
        ]
        assert MAX_EPILOGUES_PER_GROUP == len(chain) - 1
        for ep in chain:
            g.add(ep)
        plan = plan_fusion(g)
        groups = anchored(plan)
        assert groups["mm"] == ("act", "res", "sm")
        # The op past the cap anchors its own group.
        assert "ln" in groups


# -- legality -----------------------------------------------------------------


def pooled_state(n_epilogues: int = 2) -> ETIR:
    mm = ops.matmul(64, 32, 64, "fuse_mm")
    pool = tuple(
        ops.elementwise((64, 64), "relu", f"ep{i}") for i in range(n_epilogues)
    )
    base = ETIR.from_tiles(mm, {"i": 16, "j": 16, "k": 8}, {"i": 4, "j": 4, "k": 2})
    return ETIR(
        mm, base.config, base.cur_level, base.num_levels, epilogue_pool=pool
    )


class TestFusionLegality:
    def test_fuse_unfuse_round_trip_restores_state(self):
        state = pooled_state()
        fused = state.with_fuse()
        assert fused is not None and fused.fused == 1
        back = fused.with_unfuse()
        assert back is not None and back.fused == 0
        assert back.key() == state.key()
        assert back == state

    def test_fuse_exhausts_pool_then_returns_none(self):
        state = pooled_state(n_epilogues=2)
        s1 = state.with_fuse()
        s2 = s1.with_fuse()
        assert s2.fused == 2
        assert s2.with_fuse() is None
        assert state.with_unfuse() is None  # nothing fused yet

    def test_fusion_degree_distinguishes_keys(self):
        state = pooled_state()
        assert state.key() != state.with_fuse().key()

    def test_epilogue_partition_tracks_fused_prefix(self):
        state = pooled_state(n_epilogues=2).with_fuse()
        assert [ep.name for ep in state.epilogues] == ["ep0"]
        assert [ep.name for ep in state.pending_epilogues] == ["ep1"]

    def test_etir_rejects_reduce_axis_epilogue(self):
        mm = ops.matmul(64, 32, 64, "anchor")
        reducer = ops.matmul(64, 32, 64, "bad_ep")
        base = ETIR.from_tiles(
            mm, {"i": 16, "j": 16, "k": 8}, {"i": 4, "j": 4, "k": 2}
        )
        with pytest.raises(ValueError, match="reduce axes"):
            ETIR(
                mm,
                base.config,
                base.cur_level,
                base.num_levels,
                epilogue_pool=(reducer,),
            )

    def test_schedule_rejects_reduce_axis_epilogue(self):
        sched = Schedule(ops.matmul(64, 32, 64, "anchor"))
        with pytest.raises(ScheduleError, match="reduce axes"):
            sched.fuse_epilogue(ops.matmul(64, 32, 64, "bad_ep"))

    def test_schedule_accepts_spatial_epilogue(self):
        sched = Schedule(ops.matmul(64, 32, 64, "anchor"))
        sched.fuse_epilogue(ops.elementwise((64, 64), "relu", "act"))
        assert [ep.name for ep in sched.epilogue_ops] == ["act"]

    def test_seed_states_include_both_fusion_extremes(self, hw):
        gensor = Gensor(hw, QUICK)
        mm = ops.matmul(64, 32, 64, "seed_mm")
        pool = (ops.elementwise((64, 64), "relu", "seed_ep"),)
        seeds = gensor.seed_states(mm, pool)
        degrees = {s.fused for s in seeds}
        assert degrees == {0, 1}
        assert all(s.epilogue_pool == pool for s in seeds)


# -- parity and the fusion win ------------------------------------------------


class TestProgramCompilation:
    def test_no_fusion_program_matches_per_op_compiles(self, hw):
        """fusion=False through the program machinery is per-op compilation
        in program form: identical winning configs per op."""
        g = ModelGraph("m", batch=1)
        g.add(ops.matmul(64, 32, 64, "mm"))
        g.add(ops.elementwise((64, 64), "gelu", "act"))
        prog = compile_program(Gensor(hw, QUICK), g, fusion=False)
        assert [grp.anchor_name for grp in prog.groups] == ["mm", "act"]
        for grp, inst in zip(prog.groups, g.ops):
            solo = Gensor(hw, QUICK).compile(inst.compute)
            best = solo.best
            assert grp.best_config == (
                best.config.tiles,
                best.config.vthreads,
                best.cur_level,
            )
            assert grp.kernel_latency_s == solo.best_metrics.latency_s
            assert grp.fused == 0 and grp.pending_cost_s == 0.0

    def test_fused_group_accounting(self, hw):
        g = ModelGraph("m", batch=1)
        g.add(ops.matmul(64, 32, 64, "mm"))
        g.add(ops.elementwise((64, 64), "gelu", "act"))
        prog = compile_program(Gensor(hw, QUICK), g, fusion=True)
        assert len(prog.groups) == 1
        grp = prog.groups[0]
        assert grp.epilogue_names == ("act",)
        assert grp.anchor_label == "mm@64x64x32"
        assert 0 <= grp.fused <= 1
        # latency_s always covers the whole group: fused kernel + pending.
        assert grp.latency_s == grp.kernel_latency_s + grp.pending_cost_s
        assert prog.num_kernels == 2 - grp.fused

    def test_bert_batch1_fusion_win_at_least_10pct(self, hw):
        """The ISSUE's acceptance bar: whole-graph fusion beats the per-op
        latency sum on BERT batch-1 by >= 10%."""
        graph = bert_small(batch=1, seq=64)
        per_op = compile_and_time(graph, Gensor(hw, QUICK), "gensor")
        prog = compile_and_time(
            graph, Gensor(hw, QUICK), "gensor", program=True
        )
        assert prog.program is not None
        assert prog.program.num_fused_ops > 0
        win = 1.0 - prog.latency_s / per_op.latency_s
        assert win >= 0.10, f"fusion win {win:+.1%} below the 10% bar"
        # Fewer launches than op executions: fusion eliminated kernels.
        total_execs = sum(inst.count for inst in graph.ops)
        assert prog.program.num_kernels < total_execs

    def test_program_result_per_op_keys_are_group_labels(self, hw):
        g = ModelGraph("m", batch=1)
        g.add(ops.matmul(64, 32, 64, "mm"))
        g.add(ops.elementwise((64, 64), "gelu", "act"))
        res = compile_and_time(g, Gensor(hw, QUICK), "gensor", program=True)
        assert list(res.per_op_latency) == ["mm@64x64x32+act"]


# -- serving-path fusion ------------------------------------------------------


class TestDynamicFusedPath:
    def test_fused_compile_bypasses_cache_tiers(self, hw):
        dyn = DynamicGensor(hw, QUICK)
        mm = ops.matmul(64, 32, 64, "dyn_mm")
        pool = (ops.elementwise((64, 64), "relu", "dyn_ep"),)
        first = dyn.compile(mm, epilogues=pool)
        second = dyn.compile(mm, epilogues=pool)
        # Fused states are not cacheable: every fused request is a cold
        # construction and nothing lands in the single-op cache.
        assert first.source == "cold" and second.source == "cold"
        assert dyn.stats.cold == 2 and dyn.stats.hits == 0
        assert len(dyn.cache) == 0

    def test_bare_compile_still_caches_after_fused_requests(self, hw):
        dyn = DynamicGensor(hw, QUICK)
        mm = ops.matmul(64, 32, 64, "dyn_mm")
        dyn.compile(mm, epilogues=(ops.elementwise((64, 64), "relu", "e"),))
        assert dyn.compile(mm).source == "cold"
        assert dyn.compile(mm).source == "hit"

    def test_checkpointing_rejected_for_fused_compiles(self, hw):
        gensor = Gensor(hw, QUICK)
        pool = (ops.elementwise((64, 64), "relu", "cp_ep"),)
        with pytest.raises(ValueError, match="checkpoint"):
            gensor.compile(
                ops.matmul(64, 32, 64, "cp_mm"),
                epilogues=pool,
                checkpointer=object(),
            )
