"""Property-based legality of scheduling actions (hypothesis).

Every state reachable through :meth:`ConstructionGraph.expand` — i.e.
through legal scheduling actions — must preserve the ETIR invariants the
paper's construction relies on: tile nesting, vThread bounds, and the
per-transition memory check that zeroes infeasible probabilities.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import ConstructionGraph
from repro.hardware import rtx4090
from repro.ir import operators as ops
from repro.ir.etir import ETIR

HW = rtx4090()

dims = st.sampled_from([16, 32, 48, 64, 96, 128])


def random_walk(compute, steps, choices):
    """Follow ``choices`` through the construction graph; return all
    states visited (including the start)."""
    graph = ConstructionGraph(HW)
    state = ETIR.initial(compute)
    visited = [state]
    for pick in choices[:steps]:
        edges = graph.expand(state)
        if not edges:
            break
        state = graph.nodes[edges[pick % len(edges)].dst_key]
        visited.append(state)
    return visited


def assert_invariants(state):
    hw_ok = state.memory_ok(HW, strict=False)
    assert hw_ok, f"reachable state violates memory check: {state.describe()}"
    assert state.smem_footprint_bytes() <= HW.smem.capacity_bytes
    assert state.regs_per_thread() <= 255
    for idx, ax in enumerate(state.compute.axes):
        tiles = state.config.tiles[idx]
        # nesting: 1 <= T_1 <= ... <= T_L <= extent
        assert tiles[0] >= 1
        for inner, outer in zip(tiles, tiles[1:]):
            assert inner <= outer, f"nesting broken on {ax.name}: {tiles}"
        assert tiles[-1] <= ax.extent
        v = state.vthreads(idx)
        assert 1 <= v <= tiles[0]
        if ax.is_reduce:
            assert v == 1, f"reduce axis {ax.name} acquired vThreads"


class TestReachableStates:
    @settings(max_examples=40, deadline=None)
    @given(
        m=dims,
        k=dims,
        n=dims,
        steps=st.integers(0, 25),
        choices=st.lists(st.integers(0, 10 ** 6), min_size=25, max_size=25),
    )
    def test_gemm_walk_preserves_invariants(self, m, k, n, steps, choices):
        for state in random_walk(
            ops.matmul(m, k, n, "prop_mm"), steps, choices
        ):
            assert_invariants(state)

    @settings(max_examples=15, deadline=None)
    @given(
        c=st.sampled_from([4, 8, 16]),
        f=st.sampled_from([8, 16, 32]),
        steps=st.integers(0, 20),
        choices=st.lists(st.integers(0, 10 ** 6), min_size=20, max_size=20),
    )
    def test_conv_walk_preserves_invariants(self, c, f, steps, choices):
        compute = ops.conv2d(1, c, 14, 14, f, 3, 3, 1, "prop_conv")
        for state in random_walk(compute, steps, choices):
            assert_invariants(state)

    @settings(max_examples=25, deadline=None)
    @given(
        m=dims,
        k=dims,
        n=dims,
        steps=st.integers(1, 25),
        choices=st.lists(st.integers(0, 10 ** 6), min_size=25, max_size=25),
    )
    def test_tiles_are_pow2_or_extent_capped(self, m, k, n, steps, choices):
        # Doubling from 1 only ever lands on powers of two, except when a
        # non-pow2 axis extent (or the outer tile) clamps the final step.
        compute = ops.matmul(m, k, n, "prop_mm2")
        for state in random_walk(compute, steps, choices):
            for idx, ax in enumerate(state.compute.axes):
                tiles = state.config.tiles[idx]
                for lvl, t in enumerate(tiles, start=1):
                    upper = (
                        ax.extent if lvl == len(tiles) else tiles[lvl]
                    )
                    is_pow2 = t & (t - 1) == 0
                    assert is_pow2 or t == upper, (
                        f"{ax.name} tile {t} at level {lvl} is neither a"
                        f" power of two nor its upper bound {upper}"
                    )


class TestInverseTiling:
    @settings(max_examples=60, deadline=None)
    @given(
        m=dims,
        k=dims,
        n=dims,
        axis=st.integers(0, 2),
        lvl=st.integers(1, 2),
        bt=st.sampled_from([2, 4, 8, 16]),
        tt=st.sampled_from([1, 2, 4]),
    )
    def test_inv_tiling_inverts_tiling(self, m, k, n, axis, lvl, bt, tt):
        compute = ops.matmul(m, k, n, "prop_inv")
        state = ETIR.from_tiles(
            compute,
            {"i": bt, "j": bt, "k": bt},
            {"i": min(tt, bt), "j": min(tt, bt)},
        )
        up = state.scaled_tile_at(axis, lvl, up=True)
        if up is None:
            return
        if up.tile(axis, lvl) != 2 * state.tile(axis, lvl):
            return  # clamped to a non-pow2 upper bound; not a pure double
        down = up.scaled_tile_at(axis, lvl, up=False)
        assert down is not None, "inverse-tiling refused to undo a tiling"
        assert down.key() == state.key()

    @settings(max_examples=60, deadline=None)
    @given(
        m=dims,
        k=dims,
        n=dims,
        axis=st.integers(0, 2),
        lvl=st.integers(1, 2),
        bt=st.sampled_from([4, 8, 16]),
    )
    def test_tiling_inverts_inv_tiling(self, m, k, n, axis, lvl, bt):
        compute = ops.matmul(m, k, n, "prop_inv2")
        state = ETIR.from_tiles(compute, {"i": bt, "j": bt, "k": bt})
        down = state.scaled_tile_at(axis, lvl, up=False)
        if down is None:
            return
        up = down.scaled_tile_at(axis, lvl, up=True)
        assert up is not None, "tiling refused to undo an inverse-tiling"
        assert up.key() == state.key()
