"""Tracer backends: event capture, JSONL round-trip, null-path contract."""

import json
import threading

import pytest

from repro.obs import (
    JsonlTracer,
    NULL_TRACER,
    NullTracer,
    RecordingTracer,
    TraceEvent,
    load_events,
)


class TestNullTracer:
    def test_disabled(self):
        assert NULL_TRACER.enabled is False
        assert NullTracer().enabled is False

    def test_emit_is_noop(self):
        NULL_TRACER.emit("anything", {"k": 1})

    def test_close_idempotent(self):
        NULL_TRACER.close()
        NULL_TRACER.close()


class TestRecordingTracer:
    def test_records_in_order(self):
        t = RecordingTracer()
        t.emit("a", {"x": 1})
        t.emit("b", {"x": 2}, dur=0.5, tid=3)
        assert [e.name for e in t.events] == ["a", "b"]
        assert t.events[1].dur == 0.5
        assert t.events[1].tid == 3
        assert len(t) == 2

    def test_by_name(self):
        t = RecordingTracer()
        t.emit("walk_step", {"i": 0})
        t.emit("measure", {})
        t.emit("walk_step", {"i": 1})
        assert [e.args["i"] for e in t.by_name("walk_step")] == [0, 1]

    def test_empty_tracer_is_not_discarded_by_is_none_checks(self):
        # Regression: ``len() == 0`` makes the tracer falsy; instrumented
        # code must resolve defaults with ``is None``, not truthiness.
        t = RecordingTracer()
        assert not t.events
        resolved = t if t is not None else NULL_TRACER
        assert resolved is t

    def test_thread_safe_append(self):
        t = RecordingTracer()

        def worker(n):
            for i in range(200):
                t.emit("e", {"n": n, "i": i})

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert len(t) == 8 * 200


class TestJsonlTracer:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with JsonlTracer(path) as t:
            t.emit("walk_step", {"chain": 0, "prob": 0.25}, tid=1)
            t.emit("compile", {"iterations": 7}, dur=1.5)
        assert t.num_events == 2
        events = load_events(path)
        assert [e.name for e in events] == ["walk_step", "compile"]
        assert events[0].args == {"chain": 0, "prob": 0.25}
        assert events[0].tid == 1
        assert events[1].dur == 1.5

    def test_emit_after_close_raises(self, tmp_path):
        t = JsonlTracer(str(tmp_path / "t.jsonl"))
        t.close()
        with pytest.raises(ValueError, match="closed"):
            t.emit("x")

    def test_close_idempotent(self, tmp_path):
        t = JsonlTracer(str(tmp_path / "t.jsonl"))
        t.close()
        t.close()

    def test_one_json_object_per_line(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with JsonlTracer(path) as t:
            for i in range(5):
                t.emit("e", {"i": i})
        lines = [l for l in open(path).read().splitlines() if l]
        assert len(lines) == 5
        assert all(json.loads(l)["name"] == "e" for l in lines)


class TestLoadEvents:
    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "ok", "ts": 0}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_events(str(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"name": "a", "ts": 0}\n\n{"name": "b", "ts": 1}\n')
        assert [e.name for e in load_events(str(path))] == ["a", "b"]

    def test_event_defaults(self):
        e = TraceEvent.from_json({"name": "x"})
        assert e.ts == 0.0 and e.dur == 0.0 and e.tid == 0 and e.args == {}
