"""LockWitness: runtime lock-order recording, cycles, Condition protocol."""

from __future__ import annotations

import os
import threading

import pytest

from repro.analysis import witness as witness_mod
from repro.analysis.witness import LockWitness, WitnessedLock

#: the install/uninstall tests manage the global patch themselves, which
#: would tear down the session-wide witness the chaos CI conftest installs.
needs_own_witness = pytest.mark.skipif(
    os.environ.get("REPRO_LOCK_WITNESS") == "1",
    reason="a session-wide LockWitness is already installed",
)


@pytest.fixture
def fresh_witness():
    """An isolated witness with hand-wrapped locks (no global patching)."""
    return LockWitness()


def wrap(witness: LockWitness, site: str, reentrant: bool = False):
    inner = threading.RLock() if reentrant else threading.Lock()
    return WitnessedLock(inner, site, reentrant=reentrant, witness=witness)


def test_nested_acquisition_records_edge(fresh_witness):
    a = wrap(fresh_witness, "a.py:1")
    b = wrap(fresh_witness, "b.py:1")
    with a:
        with b:
            pass
    assert fresh_witness.order_graph()["a.py:1"] == {"b.py:1"}
    assert fresh_witness.cycles() == []
    fresh_witness.assert_acyclic()


def test_opposite_orders_are_a_cycle(fresh_witness):
    a = wrap(fresh_witness, "a.py:1")
    b = wrap(fresh_witness, "b.py:1")
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    assert fresh_witness.cycles() == [["a.py:1", "b.py:1"]]
    with pytest.raises(AssertionError, match="cyclic acquisition order"):
        fresh_witness.assert_acyclic()


def test_rlock_reentry_no_self_edge(fresh_witness):
    r = wrap(fresh_witness, "r.py:1", reentrant=True)
    with r:
        with r:
            pass
    assert fresh_witness.cycles() == []
    assert fresh_witness.edge_counts() == {}


def test_same_site_plain_locks_record_self_edge(fresh_witness):
    # two distinct Locks minted at one site (a factory that should have
    # been per-key but isn't): nesting them is a real self-deadlock risk
    l1 = wrap(fresh_witness, "f.py:9")
    l2 = wrap(fresh_witness, "f.py:9")
    with l1:
        with l2:
            pass
    assert fresh_witness.cycles() == [["f.py:9"]]


def test_sibling_acquisition_order_across_threads(fresh_witness):
    a = wrap(fresh_witness, "a.py:1")
    b = wrap(fresh_witness, "b.py:1")
    seen = []

    def worker():
        with b:
            seen.append("b")

    t = threading.Thread(target=worker)
    with a:
        t.start()
        t.join()
    # the other thread held nothing: no a->b edge
    assert fresh_witness.edge_counts() == {}
    assert seen == ["b"]


def test_condition_wait_keeps_stack_balanced(fresh_witness):
    lock = wrap(fresh_witness, "c.py:1", reentrant=True)
    cond = threading.Condition(lock)
    fired = threading.Event()

    def notifier():
        fired.wait(5.0)
        with cond:
            cond.notify()

    t = threading.Thread(target=notifier)
    t.start()
    with cond:
        fired.set()
        assert cond.wait(timeout=5.0)
    t.join()
    fresh_witness.assert_acyclic()
    # stack drained: a fresh acquisition records no spurious edges
    other = wrap(fresh_witness, "d.py:1")
    with other:
        pass
    assert ("c.py:1", "d.py:1") not in fresh_witness.edge_counts()


@needs_own_witness
def test_install_wraps_repro_allocations_only(tmp_path):
    assert witness_mod.current_witness() is None
    w = witness_mod.install()
    try:
        assert witness_mod.current_witness() is w
        # an allocation from this test file (outside src/repro) stays raw
        raw = threading.Lock()
        assert not isinstance(raw, WitnessedLock)
        # an allocation from inside the repro package gets wrapped
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        counter = registry.counter("witness_smoke_total")
        counter.inc()
        assert any(
            "repro/obs/metrics.py" in site for site in w.sites()
        ), w.sites()
        w.assert_acyclic()
    finally:
        witness_mod.uninstall()
    assert witness_mod.current_witness() is None
    assert threading.Lock is witness_mod._RAW_LOCK


@needs_own_witness
def test_install_is_idempotent():
    w1 = witness_mod.install()
    try:
        assert witness_mod.install() is w1
    finally:
        witness_mod.uninstall()


def test_witnessed_service_stays_acyclic():
    """Integration: a real serve workload under the witness is acyclic."""
    already = witness_mod.current_witness()
    w = already if already is not None else witness_mod.install()
    try:
        from repro.core.constructor import GensorConfig
        from repro.hardware import generic_gpu
        from repro.ir import operators as ops
        from repro.serve.service import CompileService

        cfg = GensorConfig(seed=0, num_chains=2, max_iterations_per_chain=8)
        svc = CompileService(
            generic_gpu(), cfg, workers=2, warm_polish_steps=2
        )
        try:
            for i in range(3):
                resp = svc.serve(
                    ops.matmul(32 + 8 * i, 24, 40, f"wit{i}"), timeout=60
                )
                assert resp.ok
        finally:
            svc.close()
        assert w.sites(), "witness saw no repro lock allocations"
        w.assert_acyclic()
    finally:
        if already is None:
            witness_mod.uninstall()
