"""Differential kill-and-resume harness: a construction walk killed at a
randomized step and resumed from its last checkpoint must be
byte-identical — best schedule, top-k, iteration count, states visited,
and the walk-step trace suffix — to the uninterrupted walk, on both the
SoA and the object walk paths.

The kill is a cooperative-cancellation bomb (a CancelToken that trips on
its Nth poll), which models both per-attempt timeouts and, because the
checkpoint is already built by the time any kill can land, SIGKILL-style
process death recovered via the persisted store.
"""

import os
from contextlib import nullcontext

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.constructor import Gensor, GensorConfig
from repro.hardware import rtx4090
from repro.ir import operators as ops
from repro.obs.tracer import RecordingTracer
from repro.perf.soa import soa_walk_disabled
from repro.resilience.checkpoint import (
    CheckpointPolicy,
    CheckpointStore,
    Checkpointer,
    WalkCheckpoint,
)
from repro.resilience.deadline import CancelToken, CompileCancelled

HW = rtx4090()
CFG = GensorConfig(
    seed=int(os.environ.get("REPRO_CHAOS_SEED", "0")),
    num_chains=2,
    top_k=3,
    polish_steps=4,
    max_iterations_per_chain=30,
)
OP = ops.matmul(64, 48, 80, "resume_gemm")
EVERY = 7  # checkpoint cadence used throughout; also the wasted bound


class Bomb(CancelToken):
    """A cancel token that trips on its Nth poll (deterministic kill)."""

    def __init__(self, fuse: int) -> None:
        super().__init__(None)
        self.fuse = int(fuse)
        self.checks = 0

    def expired(self) -> bool:
        self.checks += 1
        return self.checks >= self.fuse


def walk_path(soa: bool):
    """Context manager selecting the SoA or the object walk path."""
    return nullcontext() if soa else soa_walk_disabled()


def summarize(result):
    return (
        result.best.key(),
        tuple(s.key() for s in result.top_results),
        result.iterations,
        result.states_visited,
    )


_BASELINE: dict[bool, tuple] = {}


def baseline(soa: bool) -> tuple:
    if soa not in _BASELINE:
        with walk_path(soa):
            _BASELINE[soa] = summarize(Gensor(HW, CFG).compile(OP))
    return _BASELINE[soa]


def kill_and_resume(fuse: int, soa: bool):
    """Run to the kill point, resume from the last checkpoint; return
    (summary, checkpointer_of_killed_attempt, was_killed)."""
    ck = Checkpointer(CheckpointPolicy(every_steps=EVERY))
    with walk_path(soa):
        try:
            result = Gensor(HW, CFG).compile(
                OP, cancel=Bomb(fuse), checkpointer=ck
            )
            return summarize(result), ck, False
        except CompileCancelled:
            pass
        result = Gensor(HW, CFG).compile(OP, resume_from=ck.last)
    return summarize(result), ck, True


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(fuse=st.integers(min_value=1, max_value=80), soa=st.booleans())
def test_kill_at_random_step_resumes_byte_identical(fuse, soa):
    """The tentpole parity bar: >= 50 randomized kill points, both paths."""
    got, ck, killed = kill_and_resume(fuse, soa)
    assert got == baseline(soa)
    if killed:
        # wasted recompute is bounded by one checkpoint interval
        assert ck.wasted_states() <= EVERY


def test_kill_before_first_checkpoint_restarts_clean():
    """A kill before any snapshot resumes from nothing — still identical."""
    ck = Checkpointer(CheckpointPolicy(every_steps=1000))
    with pytest.raises(CompileCancelled):
        Gensor(HW, CFG).compile(OP, cancel=Bomb(3), checkpointer=ck)
    assert ck.last is None
    result = Gensor(HW, CFG).compile(OP, resume_from=ck.last)
    assert summarize(result) == baseline(True)


@pytest.mark.parametrize("soa", [True, False], ids=["soa", "object"])
def test_trace_suffix_matches_uninterrupted_walk(soa):
    """The resumed walk's walk_step events equal the uninterrupted run's
    suffix — same chains, same chosen edges, same probabilities."""
    with walk_path(soa):
        full_tracer = RecordingTracer()
        Gensor(HW, CFG, tracer=full_tracer).compile(OP)
        ck = Checkpointer(CheckpointPolicy(every_steps=EVERY))
        try:
            Gensor(HW, CFG).compile(OP, cancel=Bomb(25), checkpointer=ck)
        except CompileCancelled:
            pass
        assert ck.last is not None
        resumed_tracer = RecordingTracer()
        Gensor(HW, CFG, tracer=resumed_tracer).compile(
            OP, resume_from=ck.last
        )
    full = [e.args for e in full_tracer.events if e.name == "walk_step"]
    resumed = [
        e.args for e in resumed_tracer.events if e.name == "walk_step"
    ]
    assert 0 < len(resumed) < len(full)
    assert resumed == full[len(full) - len(resumed):]


@pytest.mark.parametrize("soa", [True, False], ids=["soa", "object"])
def test_resume_through_store_round_trip(soa):
    """Persisting through CheckpointStore (the process-death path) keeps
    the parity: save, load in a 'new process', resume."""
    import tempfile

    ck = Checkpointer(CheckpointPolicy(every_steps=EVERY))
    with walk_path(soa):
        try:
            Gensor(HW, CFG).compile(OP, cancel=Bomb(31), checkpointer=ck)
        except CompileCancelled:
            pass
        assert ck.last is not None
        with tempfile.TemporaryDirectory() as root:
            store = CheckpointStore(root)
            store.save("rtx4090", ck.last)
            loaded = store.load("rtx4090", ck.last.compute_key)
            assert loaded == ck.last
            result = Gensor(HW, CFG).compile(OP, resume_from=loaded)
    assert summarize(result) == baseline(soa)


def test_resume_across_walk_paths():
    """A checkpoint taken on the SoA path resumes on the object path (and
    vice versa) — the config digest excludes the path toggle because the
    paths are proven bit-identical."""
    ck = Checkpointer(CheckpointPolicy(every_steps=EVERY))
    try:
        Gensor(HW, CFG).compile(OP, cancel=Bomb(25), checkpointer=ck)
    except CompileCancelled:
        pass
    assert ck.last is not None
    with soa_walk_disabled():
        result = Gensor(HW, CFG).compile(OP, resume_from=ck.last)
    assert summarize(result) == baseline(True) == baseline(False)


def test_multi_walker_rejects_resume():
    ck = Checkpointer(CheckpointPolicy(every_steps=EVERY))
    try:
        Gensor(HW, CFG).compile(OP, cancel=Bomb(25), checkpointer=ck)
    except CompileCancelled:
        pass
    with pytest.raises(ValueError, match="single walker"):
        Gensor(HW, CFG).compile(OP, walkers=2, resume_from=ck.last)


def test_checkpointing_does_not_perturb_the_walk():
    """A checkpointed-but-never-killed compile equals the bare compile:
    snapshotting reads walk state, never the RNG stream."""
    ck = Checkpointer(CheckpointPolicy(every_steps=3))
    result = Gensor(HW, CFG).compile(OP, checkpointer=ck)
    assert ck.saved > 0
    assert summarize(result) == baseline(True)


def test_polish_resume_matches_uninterrupted():
    gensor = Gensor(HW, CFG)
    seed_state = gensor.seed_states(OP)[0]
    full = gensor.polish(seed_state, 12)
    # interrupt "after 5 steps": polish is memoryless, so the checkpoint
    # is just the intermediate state plus the steps already spent
    halfway = gensor.polish(seed_state, 5)
    ck = WalkCheckpoint.for_polish(OP, halfway, steps_done=5)
    resumed = gensor.polish(seed_state, 12, resume_from=ck)
    assert resumed.key() == full.key()
