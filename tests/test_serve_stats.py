"""Service statistics: tier counters, percentiles, rendering."""

import pytest

from repro.serve.request import CompileResponse, TIERS
from repro.serve.stats import ServiceStats, percentile


class TestPercentile:
    def test_empty_sample(self):
        assert percentile([], 95) == 0.0

    def test_single_value(self):
        assert percentile([3.0], 50) == 3.0
        assert percentile([3.0], 99) == 3.0

    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 95) == 95.0
        assert percentile(values, 100) == 100.0

    def test_unsorted_input(self):
        assert percentile([9.0, 1.0, 5.0], 50) == 5.0

    @pytest.mark.parametrize("pct", [0.0, -1.0, 101.0])
    def test_invalid_pct_rejected(self, pct):
        with pytest.raises(ValueError, match="pct"):
            percentile([1.0], pct)


def _response(tier="cold", ok=True, **kwargs) -> CompileResponse:
    return CompileResponse(request_id=1, tier=tier, ok=ok, **kwargs)


class TestCompileResponse:
    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown serve tier"):
            _response(tier="lukewarm")

    def test_degraded_property(self):
        assert _response(tier="degraded_warm").degraded
        assert _response(tier="degraded_seed").degraded
        assert not _response(tier="warm").degraded

    def test_deadline_met(self):
        assert _response(service_latency_s=0.1).deadline_met  # no deadline
        assert _response(service_latency_s=0.1, deadline_s=0.5).deadline_met
        assert not _response(service_latency_s=0.9, deadline_s=0.5).deadline_met
        assert not _response(tier="rejected", ok=False).deadline_met


class TestServiceStats:
    def test_counts_every_tier(self):
        stats = ServiceStats()
        for tier in TIERS:
            ok = tier not in ("rejected", "failed")
            stats.record(_response(tier=tier, ok=ok))
        snap = stats.snapshot()
        for tier in TIERS:
            assert snap[tier] == 1
        assert snap["completed"] == 5  # ok responses only
        assert snap["degraded"] == 2

    def test_coalesced_and_deadline_missed(self):
        stats = ServiceStats()
        stats.record(_response(coalesced=True, service_latency_s=0.01))
        stats.record(_response(service_latency_s=2.0, deadline_s=1.0))
        snap = stats.snapshot()
        assert snap["coalesced"] == 1
        assert snap["deadline_missed"] == 1

    def test_backfills_counted(self):
        stats = ServiceStats()
        stats.record_backfill()
        stats.record_backfill()
        assert stats.snapshot()["backfilled"] == 2

    def test_throughput_uses_given_wall_clock(self):
        stats = ServiceStats()
        for _ in range(10):
            stats.record_submitted()
            stats.record(_response(service_latency_s=0.05))
        snap = stats.snapshot(wall_s=2.0)
        assert snap["submitted"] == 10
        assert snap["throughput_rps"] == pytest.approx(5.0)
        assert snap["p50_ms"] == pytest.approx(50.0)

    def test_render_lists_tiers_and_percentiles(self):
        stats = ServiceStats()
        stats.record(_response(service_latency_s=0.1))
        text = stats.render(title="test stats")
        assert "test stats" in text
        for tier in TIERS:
            assert f"tier:{tier}" in text
        assert "p95 latency" in text and "throughput" in text
