"""Cross-module property-based invariants (hypothesis)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.actions import action_benefit, enumerate_actions
from repro.core.graph import ConstructionGraph
from repro.hardware import rtx4090
from repro.ir import operators as ops
from repro.ir.access import tile_footprint_bytes, tile_traffic_bytes
from repro.ir.etir import ETIR
from repro.sim.costmodel import CostModel

HW = rtx4090()
MODEL = CostModel(HW)

pow2 = st.sampled_from([1, 2, 4, 8, 16, 32, 64])


def gemm_state(m, k, n, bi, bj, bk, ti, tj):
    g = ops.matmul(m, k, n, "prop")
    return ETIR.from_tiles(
        g,
        {"i": bi, "j": bj, "k": bk},
        {"i": min(ti, bi), "j": min(tj, bj)},
    )


class TestCostModelInvariants:
    @settings(max_examples=50, deadline=None)
    @given(bi=pow2, bj=pow2, bk=pow2, ti=pow2, tj=pow2)
    def test_metrics_well_formed(self, bi, bj, bk, ti, tj):
        state = gemm_state(1024, 512, 1024, bi, bj, bk, ti, tj)
        m = MODEL.evaluate(state)
        if not m.feasible:
            return
        assert m.latency_s > 0
        assert 0.0 <= m.compute_throughput <= 1.0
        assert 0.0 <= m.sm_occupancy <= 1.0
        assert 0.0 <= m.mem_busy <= 1.0
        assert 0.0 <= m.l2_hit_rate <= 1.0
        assert m.bank_conflict_factor >= 1.0
        assert m.achieved_flops <= HW.peak_flops

    @settings(max_examples=50, deadline=None)
    @given(bi=pow2, bj=pow2, bk=pow2, ti=pow2, tj=pow2)
    def test_latency_above_physical_floors(self, bi, bj, bk, ti, tj):
        state = gemm_state(1024, 512, 1024, bi, bj, bk, ti, tj)
        m = MODEL.evaluate(state)
        if not m.feasible:
            return
        compute = state.compute
        assert m.latency_s >= compute.total_flops / HW.peak_flops
        assert m.latency_s >= HW.kernel_launch_overhead_s

    @settings(max_examples=30, deadline=None)
    @given(bi=pow2, bj=pow2, bk=pow2)
    def test_deterministic(self, bi, bj, bk):
        a = gemm_state(512, 256, 512, bi, bj, bk, 4, 4)
        b = gemm_state(512, 256, 512, bi, bj, bk, 4, 4)
        assert MODEL.latency(a) == MODEL.latency(b)


class TestAccessInvariants:
    @settings(max_examples=40, deadline=None)
    @given(ti=pow2, tj=pow2, tk=pow2)
    def test_footprint_bounded_by_tensor_sizes(self, ti, tj, tk):
        g = ops.matmul(128, 64, 128, "prop")
        fp = tile_footprint_bytes(g, {"i": ti, "j": tj, "k": tk})
        assert 0 < fp <= g.total_io_bytes()

    @settings(max_examples=40, deadline=None)
    @given(ti=pow2, tj=pow2, tk=pow2)
    def test_traffic_at_least_compulsory(self, ti, tj, tk):
        g = ops.matmul(128, 64, 128, "prop")
        q = tile_traffic_bytes(g, {"i": ti, "j": tj, "k": tk})
        # Output is always written once; inputs read at least... once per
        # covering tile, so traffic dominates the output compulsory bytes.
        assert q >= g.output.nbytes

    @settings(max_examples=40, deadline=None)
    @given(t=pow2)
    def test_growing_all_tiles_never_increases_traffic(self, t):
        g = ops.matmul(256, 256, 256, "prop")
        small = tile_traffic_bytes(g, {"i": t, "j": t, "k": t})
        bigger = tile_traffic_bytes(
            g, {"i": min(256, 2 * t), "j": min(256, 2 * t), "k": min(256, 2 * t)}
        )
        assert bigger <= small


class TestGraphInvariants:
    @settings(max_examples=15, deadline=None)
    @given(m=st.sampled_from([16, 24, 32, 48]), n=st.sampled_from([16, 24, 32]))
    def test_edges_always_positive_benefit_and_legal(self, m, n):
        g = ops.matmul(m, 16, n, "prop")
        graph = ConstructionGraph(HW)
        state = ETIR.initial(g)
        for edge in graph.expand(state):
            assert edge.benefit > 0
            dst = graph.nodes[edge.dst_key]
            assert dst.memory_ok(HW, strict=False)

    @settings(max_examples=10, deadline=None)
    @given(seed_tile=st.sampled_from([1, 2, 4]))
    def test_benefit_zero_iff_infeasible(self, seed_tile):
        g = ops.matmul(64, 64, 64, "prop")
        state = ETIR.initial(g)
        for action in enumerate_actions(state):
            nxt = action.apply(state)
            if nxt is None:
                continue
            benefit = action_benefit(action, state, nxt, HW)
            if nxt.memory_ok(HW, strict=False):
                assert benefit >= 0
            else:
                assert benefit == 0.0


class TestExecutorProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        shape=st.tuples(st.integers(2, 8), st.integers(2, 8)),
        t0=st.integers(1, 8),
        t1=st.integers(1, 8),
    )
    def test_elementwise_any_tiling(self, shape, t0, t1):
        g = ops.elementwise(shape, "relu", "prop")
        state = ETIR.from_tiles(g, {"d0": t0, "d1": t1})
        inputs = g.random_inputs()
        from repro.sim.executor import execute_tiled

        assert np.allclose(
            execute_tiled(state, inputs), np.maximum(inputs["X"], 0.0)
        )
