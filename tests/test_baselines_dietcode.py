"""DietCode: dynamic-shape micro-kernel optimization."""

import math

import pytest

from repro.baselines import DietCode, DietCodeConfig
from repro.baselines.dietcode import DietCode as DC
from repro.ir import operators as ops


@pytest.fixture
def family():
    return [ops.matmul(s * 8, 256, 256, f"g_s{s}") for s in (16, 32, 64, 128)]


class TestCompileFamily:
    def test_every_shape_served(self, hw, family):
        res = DietCode(hw).compile_family(family)
        assert set(res.per_shape) == {c.name for c in family}
        for r in res.per_shape.values():
            assert r.best_metrics.feasible

    def test_microkernel_count_bounded(self, hw, family):
        cfg = DietCodeConfig(num_microkernels=3)
        res = DietCode(hw, cfg).compile_family(family)
        assert len(res.microkernels) <= 3

    def test_empty_family_rejected(self, hw):
        with pytest.raises(ValueError, match="at least one"):
            DietCode(hw).compile_family([])

    def test_deterministic(self, hw, family):
        a = DietCode(hw).compile_family(family)
        b = DietCode(hw).compile_family(family)
        for name in a.per_shape:
            assert (
                a.per_shape[name].best_metrics.latency_s
                == b.per_shape[name].best_metrics.latency_s
            )

    def test_compile_cost_accounted(self, hw, family):
        res = DietCode(hw).compile_family(family)
        assert res.compile_seconds > 0
        assert res.simulated_measure_s > 0

    def test_shared_kernels_adapt_to_each_shape(self, hw, family):
        res = DietCode(hw).compile_family(family)
        # Larger shapes take longer with the same shared kernel set.
        lats = [res.per_shape[c.name].best_metrics.latency_s for c in family]
        assert lats[0] < lats[-1]


class TestGreedySelect:
    def test_picks_covering_set(self):
        table = [
            [1.0, math.inf],  # kernel 0 only covers shape 0
            [math.inf, 1.0],  # kernel 1 only covers shape 1
            [2.0, 2.0],  # kernel 2 covers both, worse
        ]
        chosen = DC._greedy_select(table, 2)
        best0 = min(table[i][0] for i in chosen)
        best1 = min(table[i][1] for i in chosen)
        assert math.isfinite(best0) and math.isfinite(best1)

    def test_prefers_lower_latency(self):
        table = [[5.0], [1.0], [3.0]]
        chosen = DC._greedy_select(table, 1)
        assert chosen == [1]

    def test_k_larger_than_pool(self):
        table = [[1.0], [2.0]]
        assert len(DC._greedy_select(table, 10)) == 2
