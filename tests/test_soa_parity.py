"""Differential parity of the SoA walk core against the object-path oracle.

The structure-of-arrays engine (repro.perf.soa) claims *bit-faithfulness*:
every benefit, probability, chosen edge, latency, and node count must be
byte-identical to what ConstructionGraph + TransitionPolicy produce.  This
harness attacks that claim from every angle the contract names — randomized
frontiers (hypothesis), annealed lockstep walks, the encode/decode
boundary, forbidden-action filtering, polish, and the raw latency kernels
— on both devices, including states the cost model rejects as INFEASIBLE.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Gensor, GensorConfig
from repro.core.actions import ActionKind
from repro.core.graph import ConstructionGraph
from repro.core.markov import build_transition_matrix
from repro.core.score import quick_latency
from repro.hardware import orin_nano, rtx4090
from repro.ir import operators as ops
from repro.ir.etir import ETIR, TileConfig
from repro.obs import RecordingTracer
from repro.perf.soa import (
    DifferentialWalker,
    SoAFrontier,
    SoAWalkEngine,
    soa_walk_disabled,
)
from repro.sim.costmodel import CostModel

DEVICES = {"rtx4090": rtx4090(), "orin_nano": orin_nano()}

OPS = {
    "mm": ops.matmul(64, 48, 80, "soa_mm"),
    "conv": ops.conv2d(1, 8, 14, 14, 16, 3, 3, 1, "soa_conv"),
}

COMBOS = [(d, o) for d in sorted(DEVICES) for o in sorted(OPS)]

# Walkers/engines shared across hypothesis examples: memo reuse is part of
# the contract under test (memoized answers must equal fresh ones), and it
# keeps example throughput high.
_WALKERS: dict[tuple[str, str], DifferentialWalker] = {}
_ENGINES: dict[tuple[str, str], SoAWalkEngine] = {}


def _walker(device: str, op: str) -> DifferentialWalker:
    key = (device, op)
    if key not in _WALKERS:
        _WALKERS[key] = DifferentialWalker(OPS[op], DEVICES[device])
    return _WALKERS[key]


def _engine(device: str, op: str) -> SoAWalkEngine:
    key = (device, op)
    if key not in _ENGINES:
        _ENGINES[key] = SoAWalkEngine(OPS[op], DEVICES[device])
    return _ENGINES[key]


def _tile_choices(extent: int) -> list[int]:
    """Powers of two up to the extent, plus the (possibly odd) extent."""
    vals = []
    v = 1
    while v <= extent:
        vals.append(v)
        v *= 2
    if extent not in vals:
        vals.append(extent)
    return vals


@st.composite
def states_for(draw, compute, num_levels=2):
    """A random *valid* ETIR: nested tiles, vThreads only on spatial axes.

    Spans the whole config lattice, not just walk-reachable states — the
    parity contract is per-state, so unreachable corners must agree too
    (including ones whose block tile blows the smem budget).
    """
    tiles = []
    vthreads = []
    for ax in compute.axes:
        choices = _tile_choices(ax.extent)
        block = draw(st.sampled_from(choices))
        thread = draw(st.sampled_from([c for c in choices if c <= block]))
        mids = [c for c in choices if thread <= c <= block]
        per_level = [thread] + [draw(st.sampled_from(mids)) for _ in range(num_levels - 2)] + [block]
        tiles.append(tuple(sorted(per_level)))
        if ax.is_reduce:
            vthreads.append(1)
        else:
            vthreads.append(draw(st.sampled_from(_tile_choices(thread))))
    cur_level = draw(st.integers(1, num_levels))
    config = TileConfig(tiles=tuple(tiles), vthreads=tuple(vthreads))
    return ETIR(compute, config, cur_level=cur_level, num_levels=num_levels)


# -- randomized frontier parity (the hypothesis sweep) ------------------------


@pytest.mark.parametrize(("device", "op"), COMBOS)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_randomized_state_parity(device, op, data):
    """Slots, edges, and probabilities agree on arbitrary valid states."""
    state = data.draw(states_for(OPS[op]))
    _walker(device, op).compare_state(state)


@pytest.mark.parametrize("device", sorted(DEVICES))
def test_infeasible_states_still_compared(device):
    """States past the smem budget (cost model: INFEASIBLE) stay in parity.

    The relaxed memory check fails, every benefit must be exactly 0.0 on
    both paths, and the full latency must be inf on both.
    """
    hw = DEVICES[device]
    compute = ops.matmul(256, 256, 256, f"soa_big_{device}")
    state = ETIR.from_tiles(
        compute,
        {"i": 256, "j": 256, "k": 256},
        {"i": 4, "j": 4, "k": 4},
    )
    assert not state.memory_ok(hw, strict=False)
    assert CostModel(hw).evaluate(state).latency_s == math.inf
    diff = DifferentialWalker(compute, hw)
    diff.compare_state(state)
    tiles, vthreads = state.config_arrays()
    assert float(diff.engine._full_latencies(tiles[None], vthreads[None])[0]) == math.inf


# -- lockstep annealed walks ---------------------------------------------------


@pytest.mark.parametrize(("device", "op"), COMBOS)
def test_differential_walk(device, op):
    diff = DifferentialWalker(OPS[op], DEVICES[device])
    report = diff.walk(seed=3, chains=2, max_iterations=40)
    assert report["iterations"] > 0
    assert report["states_compared"] > report["chains"]
    assert report["nodes"] == diff.engine.num_nodes == diff.graph.num_nodes


@pytest.mark.parametrize(
    "forbid",
    [
        frozenset({ActionKind.CACHE}),
        frozenset({ActionKind.VTHREAD_UP, ActionKind.VTHREAD_DOWN}),
    ],
    ids=["no-cache", "no-vthread"],
)
def test_differential_walk_with_forbid(forbid):
    diff = DifferentialWalker(OPS["mm"], DEVICES["rtx4090"], forbid=forbid)
    report = diff.walk(seed=1, chains=1, max_iterations=30, forbid=forbid)
    assert report["states_compared"] > 0


# -- the encode/decode boundary ------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_frontier_roundtrip(data):
    compute = OPS["mm"]
    states = [
        data.draw(states_for(compute))
        for _ in range(data.draw(st.integers(1, 4)))
    ]
    frontier = SoAFrontier.encode(states)
    assert len(frontier) == len(states)
    decoded = frontier.decode()
    assert [s.key() for s in decoded] == [s.key() for s in states]
    for s in decoded:
        # Plain Python ints all the way down: keys are JSON-serialized
        # (golden fixtures, persistent caches), where np.int64 would raise.
        json.dumps(s.key())


def test_frontier_rejects_empty_and_mixed():
    with pytest.raises(ValueError, match="empty"):
        SoAFrontier.encode([])
    a = ETIR.initial(OPS["mm"], num_levels=2)
    b = ETIR.initial(OPS["conv"], num_levels=2)
    with pytest.raises(ValueError, match="mixes"):
        SoAFrontier.encode([a, b])


# -- latency kernels, bit-compared ---------------------------------------------


@pytest.mark.parametrize(("device", "op"), COMBOS)
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_latency_bit_parity(device, op, data):
    """engine quick/full latencies == score.quick_latency / CostModel, bitwise."""
    hw = DEVICES[device]
    state = data.draw(states_for(OPS[op]))
    engine = _engine(device, op)
    tiles, vthreads = state.config_arrays()
    quick = float(engine._quick_latencies(tiles[None], vthreads[None])[0])
    ref_quick = quick_latency(state, hw, strict=False)
    assert float(quick).hex() == float(ref_quick).hex()
    full = float(engine._full_latencies(tiles[None], vthreads[None])[0])
    ref_full = CostModel(hw).evaluate(state).latency_s
    assert float(full).hex() == float(ref_full).hex()


# -- polish ---------------------------------------------------------------------


@pytest.mark.parametrize(("device", "op"), COMBOS)
def test_polish_parity(device, op):
    """engine.polish lands on the object path's state with the same trace."""
    hw = DEVICES[device]
    compute = OPS[op]
    state = ETIR.initial(compute, num_levels=hw.num_cache_levels)

    soa_tracer = RecordingTracer()
    soa = SoAWalkEngine(compute, hw).polish(state, 12, tracer=soa_tracer)

    obj_tracer = RecordingTracer()
    with soa_walk_disabled():
        obj = Gensor(hw, GensorConfig(seed=0), tracer=obj_tracer).polish(
            state, 12, tracer=obj_tracer
        )

    assert soa.key() == obj.key()
    (se,) = soa_tracer.by_name("polish")
    (oe,) = obj_tracer.by_name("polish")
    for field in ("compute", "steps", "max_steps"):
        assert se.args[field] == oe.args[field]
    for field in ("latency_before_s", "latency_after_s"):
        assert float(se.args[field]).hex() == float(oe.args[field]).hex()


# -- markov cross-check ----------------------------------------------------------


def test_markov_soa_check_covers_subgraph(hw):
    compute = ops.matmul(32, 24, 40, "soa_markov")
    graph = ConstructionGraph(hw, batch_scoring=True)
    start = ETIR.initial(compute, num_levels=hw.num_cache_levels)
    tm = build_transition_matrix(graph, start, max_nodes=40, soa_check=True)
    assert tm.n > 0
    tm.validate()
