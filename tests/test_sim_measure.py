"""Simulated on-device measurement."""

import pytest

from repro.ir import operators as ops
from repro.ir.etir import ETIR
from repro.sim.measure import Measurer


@pytest.fixture
def state():
    g = ops.matmul(1024, 512, 1024, "g")
    return ETIR.from_tiles(g, {"i": 64, "j": 64, "k": 32}, {"i": 4, "j": 4})


class TestMeasurer:
    def test_noise_is_deterministic_per_state(self, hw, state):
        m1 = Measurer(hw, seed=0).measure(state)
        m2 = Measurer(hw, seed=0).measure(state)
        assert m1.latency_s == m2.latency_s

    def test_noise_differs_across_seeds(self, hw, state):
        m1 = Measurer(hw, seed=0).measure(state)
        m2 = Measurer(hw, seed=1).measure(state)
        assert m1.latency_s != m2.latency_s

    def test_noise_is_small(self, hw, state):
        meas = Measurer(hw, seed=0, noise_sigma=0.015)
        truth = meas.model.evaluate(state).latency_s
        measured = meas.measure(state).latency_s
        assert abs(measured / truth - 1.0) < 0.10

    def test_zero_sigma_matches_truth(self, hw, state):
        meas = Measurer(hw, seed=0, noise_sigma=0.0)
        assert meas.measure(state).latency_s == pytest.approx(
            meas.model.evaluate(state).latency_s
        )

    def test_measurement_accounting(self, hw, state):
        meas = Measurer(hw, seconds_per_measurement=0.5)
        meas.measure(state)
        meas.measure(state)
        assert meas.num_measurements == 2
        assert meas.simulated_seconds == pytest.approx(1.0)

    def test_infeasible_passthrough(self, hw):
        g = ops.matmul(4096, 4096, 4096, "g")
        bad = ETIR.from_tiles(g, {"i": 512, "j": 512, "k": 64})
        assert not Measurer(hw).measure(bad).feasible

    def test_latency_shortcut(self, hw, state):
        meas = Measurer(hw, seed=0)
        assert meas.latency(state) == Measurer(hw, seed=0).measure(state).latency_s

    def test_derived_metrics_follow_jitter(self, hw, state):
        meas = Measurer(hw, seed=3)
        m = meas.measure(state)
        assert m.achieved_flops == pytest.approx(
            state.compute.total_flops / m.latency_s
        )
