"""ComputeDef validation and functional semantics."""

import numpy as np
import pytest

from repro.ir.compute import ComputeDef, TensorAccess
from repro.ir.expr import IterVar
from repro.ir.tensor import TensorSpec


def _simple_gemm(m=4, k=3, n=5):
    i = IterVar("i", m)
    j = IterVar("j", n)
    kk = IterVar("k", k, "reduce")
    a = TensorSpec("A", (m, k))
    b = TensorSpec("B", (k, n))
    c = TensorSpec("C", (m, n))
    return ComputeDef(
        name="g",
        kind="gemm",
        axes=(i, j, kk),
        inputs=(
            TensorAccess(a, (i.as_expr(), kk.as_expr())),
            TensorAccess(b, (kk.as_expr(), j.as_expr())),
        ),
        output=c,
    )


class TestValidation:
    def test_duplicate_axis_names_rejected(self):
        i = IterVar("i", 4)
        i2 = IterVar("i", 8)
        out = TensorSpec("O", (4, 8))
        x = TensorSpec("X", (4, 8))
        with pytest.raises(ValueError, match="duplicate axis"):
            ComputeDef(
                "bad", "elementwise", (i, i2),
                (TensorAccess(x, (i.as_expr(), i2.as_expr())),), out,
            )

    def test_spatial_after_reduce_rejected(self):
        k = IterVar("k", 4, "reduce")
        i = IterVar("i", 4)
        out = TensorSpec("O", (4,))
        x = TensorSpec("X", (4, 4))
        with pytest.raises(ValueError, match="after a reduce axis"):
            ComputeDef(
                "bad", "x", (k, i),
                (TensorAccess(x, (i.as_expr(), k.as_expr())),), out,
            )

    def test_output_shape_mismatch_rejected(self):
        i = IterVar("i", 4)
        out = TensorSpec("O", (5,))
        x = TensorSpec("X", (4,))
        with pytest.raises(ValueError, match="output shape"):
            ComputeDef("bad", "x", (i,), (TensorAccess(x, (i.as_expr(),)),), out)

    def test_unknown_axis_in_access_rejected(self):
        i = IterVar("i", 4)
        z = IterVar("z", 4)
        out = TensorSpec("O", (4,))
        x = TensorSpec("X", (4,))
        with pytest.raises(ValueError, match="unknown axis"):
            ComputeDef("bad", "x", (i,), (TensorAccess(x, (z.as_expr(),)),), out)

    def test_unknown_unary_fn_rejected(self):
        i = IterVar("i", 4)
        out = TensorSpec("O", (4,))
        x = TensorSpec("X", (4,))
        with pytest.raises(ValueError, match="unary_fn"):
            ComputeDef(
                "bad", "x", (i,), (TensorAccess(x, (i.as_expr(),)),), out,
                unary_fn="banana",
            )

    def test_access_arity_checked(self):
        i = IterVar("i", 4)
        x = TensorSpec("X", (4, 4))
        with pytest.raises(ValueError, match="indices"):
            TensorAccess(x, (i.as_expr(),))


class TestAxisViews:
    def test_spatial_and_reduce_split(self):
        g = _simple_gemm()
        assert [a.name for a in g.spatial_axes] == ["i", "j"]
        assert [a.name for a in g.reduce_axes] == ["k"]

    def test_axis_lookup(self):
        g = _simple_gemm()
        assert g.axis("k").is_reduce
        with pytest.raises(KeyError):
            g.axis("zzz")

    def test_extents(self):
        g = _simple_gemm(4, 3, 5)
        assert g.extents() == {"i": 4, "j": 5, "k": 3}


class TestWorkloadStats:
    def test_total_flops(self):
        g = _simple_gemm(4, 3, 5)
        assert g.total_flops == 2.0 * 4 * 3 * 5

    def test_io_bytes_dedupes_tensors(self):
        g = _simple_gemm(4, 3, 5)
        assert g.total_input_bytes() == (4 * 3 + 3 * 5) * 4
        assert g.total_io_bytes() == (4 * 3 + 3 * 5 + 4 * 5) * 4

    def test_arithmetic_intensity_positive(self):
        assert _simple_gemm().arithmetic_intensity() > 0


class TestEvaluate:
    def test_gemm_matches_numpy(self):
        g = _simple_gemm(6, 7, 8)
        inputs = g.random_inputs()
        out = g.evaluate(inputs)
        assert np.allclose(out, inputs["A"] @ inputs["B"])

    def test_missing_input_raises(self):
        g = _simple_gemm()
        with pytest.raises(KeyError, match="missing input"):
            g.evaluate({"A": np.zeros((4, 3))})

    def test_wrong_shape_raises(self):
        g = _simple_gemm()
        bad = {"A": np.zeros((9, 9)), "B": np.zeros((3, 5))}
        with pytest.raises(ValueError, match="shape"):
            g.evaluate(bad)

    def test_scale_applied(self):
        i = IterVar("i", 4)
        x = TensorSpec("X", (4,))
        out = TensorSpec("O", (4,))
        c = ComputeDef(
            "scaled", "x", (i,), (TensorAccess(x, (i.as_expr(),)),), out,
            scale=0.5,
        )
        vals = {"X": np.arange(4.0)}
        assert np.allclose(c.evaluate(vals), np.arange(4.0) * 0.5)

    def test_unary_fn_applied(self):
        i = IterVar("i", 4)
        x = TensorSpec("X", (4,))
        out = TensorSpec("O", (4,))
        c = ComputeDef(
            "r", "x", (i,), (TensorAccess(x, (i.as_expr(),)),), out,
            unary_fn="relu",
        )
        vals = {"X": np.array([-1.0, 2.0, -3.0, 4.0])}
        assert np.allclose(c.evaluate(vals), [0, 2, 0, 4])

    def test_random_inputs_deterministic(self):
        g = _simple_gemm()
        a = g.random_inputs()
        b = g.random_inputs()
        assert np.array_equal(a["A"], b["A"])


class TestRender:
    def test_render_contains_axes_and_reads(self):
        text = _simple_gemm().render()
        assert "sum[k<" in text
        assert "A[i, k]" in text and "B[k, j]" in text
