"""Actions and the paper's benefit formulas."""

import math

import pytest

from repro.core.actions import (
    Action,
    ActionKind,
    action_benefit,
    enumerate_actions,
)
from repro.core.actions import _caching_benefit, _tiling_benefit, _vthread_benefit
from repro.hardware.memory import bank_conflict_factor
from repro.ir import operators as ops
from repro.ir.access import tile_footprint_bytes, tile_traffic_bytes
from repro.ir.etir import ETIR


@pytest.fixture
def gemm():
    return ops.matmul(256, 128, 256, "g")


class TestEnumeration:
    def test_outer_level_has_cache_no_vthread(self, gemm):
        s = ETIR.initial(gemm)
        kinds = {a.kind for a in enumerate_actions(s)}
        assert ActionKind.CACHE in kinds
        assert ActionKind.VTHREAD_UP not in kinds

    def test_inner_level_has_vthread_no_cache(self, gemm):
        s = ETIR.initial(gemm).with_cache_advance()
        kinds = {a.kind for a in enumerate_actions(s)}
        assert ActionKind.CACHE not in kinds
        assert ActionKind.VTHREAD_UP in kinds

    def test_tile_actions_cover_all_axes(self, gemm):
        s = ETIR.initial(gemm)
        ups = [a for a in enumerate_actions(s) if a.kind == ActionKind.TILE_UP]
        assert {a.axis_idx for a in ups} == {0, 1, 2}

    def test_vthread_only_on_spatial(self, gemm):
        s = ETIR.initial(gemm).with_cache_advance()
        vts = [a for a in enumerate_actions(s) if a.kind == ActionKind.VTHREAD_UP]
        assert {a.axis_idx for a in vts} == {0, 1}  # not k (idx 2)


class TestApply:
    def test_tile_up(self, gemm):
        s = ETIR.initial(gemm)
        nxt = Action(ActionKind.TILE_UP, 0).apply(s)
        assert nxt is not None and nxt.tile(0, 2) == 2

    def test_tile_down_at_one_illegal(self, gemm):
        s = ETIR.initial(gemm)
        assert Action(ActionKind.TILE_DOWN, 0).apply(s) is None

    def test_cache(self, gemm):
        s = ETIR.initial(gemm)
        nxt = Action(ActionKind.CACHE).apply(s)
        assert nxt is not None and nxt.cur_level == 1

    def test_vthread_down_at_one_illegal(self, gemm):
        s = ETIR.initial(gemm).with_cache_advance()
        assert Action(ActionKind.VTHREAD_DOWN, 0).apply(s) is None

    def test_unknown_kind_raises(self, gemm):
        s = ETIR.initial(gemm)
        with pytest.raises(ValueError):
            Action("warp_specialize", 0).apply(s)

    def test_describe(self, gemm):
        s = ETIR.initial(gemm)
        assert "tile_up(i)" == Action(ActionKind.TILE_UP, 0).describe(s)
        assert "cache" in Action(ActionKind.CACHE).describe(s)


class TestFormula1Tiling:
    def test_matches_hand_computation(self, gemm):
        s = ETIR.from_tiles(gemm, {"i": 4, "j": 4, "k": 4})
        nxt = s.scaled_tile_at(0, 2, up=True)
        got = _tiling_benefit(s, nxt)
        t_old = s.tile_sizes(s.cur_level)
        t_new = nxt.tile_sizes(s.cur_level)
        q_old = tile_traffic_bytes(gemm, t_old)
        q_new = tile_traffic_bytes(gemm, t_new)
        f_old = tile_footprint_bytes(gemm, t_old)
        f_new = tile_footprint_bytes(gemm, t_new)
        assert got == pytest.approx((q_old * f_new) / (q_new * f_old))

    def test_tile_up_rewarded_over_down(self, gemm):
        base = ETIR.from_tiles(gemm, {"i": 8, "j": 8, "k": 8})
        # from_tiles leaves cur_level at 1; the benefit is evaluated at the
        # level being scheduled, so lift the state back to level 2.
        s = ETIR(base.compute, base.config, cur_level=2, num_levels=2)
        up = s.scaled_tile(0, up=True)
        down = s.scaled_tile(0, up=False)
        assert _tiling_benefit(s, up) > 1.0 > _tiling_benefit(s, down)

    def test_inverse_benefit_reciprocal(self, gemm):
        base = ETIR.from_tiles(gemm, {"i": 8, "j": 8, "k": 8})
        s = ETIR(base.compute, base.config, cur_level=2, num_levels=2)
        up = s.scaled_tile(0, up=True)
        assert _tiling_benefit(s, up) == pytest.approx(
            1.0 / _tiling_benefit(up, s)
        )


class TestFormula2Caching:
    def test_positive_and_large_for_dram_to_smem(self, gemm, hw):
        s = ETIR.from_tiles(gemm, {"i": 32, "j": 32, "k": 16})
        # from_tiles puts cur_level at 1; lift back to 2 for the DRAM case.
        s2 = ETIR(s.compute, s.config, cur_level=2, num_levels=2)
        benefit = _caching_benefit(s2, hw)
        assert benefit > 10.0  # DRAM vs smem access-time ratio

    def test_formula_values(self, gemm, hw):
        s = ETIR.from_tiles(gemm, {"i": 32, "j": 32, "k": 16})
        s2 = ETIR(s.compute, s.config, cur_level=2, num_levels=2)
        data = float(tile_footprint_bytes(gemm, s2.tile_sizes(2), include_output=False))
        expected = hw.dram.access_time(data) / hw.smem.access_time(data)
        assert _caching_benefit(s2, hw) == pytest.approx(expected)

    def test_inner_level_uses_smem_regs_pair(self, gemm, hw):
        s = ETIR.from_tiles(gemm, {"i": 32, "j": 32, "k": 16}, {"i": 4, "j": 4})
        data = float(tile_footprint_bytes(gemm, s.tile_sizes(1), include_output=False))
        expected = hw.smem.access_time(data) / hw.regs.access_time(data)
        assert _caching_benefit(s, hw) == pytest.approx(expected)


class TestFormula3VThread:
    def test_innermost_axis_formula(self, gemm, hw):
        s = ETIR.from_tiles(gemm, {"j": 128, "i": 128}, {"j": 8, "i": 8})
        action = Action(ActionKind.VTHREAD_UP, 1)  # j is innermost spatial
        nxt = action.apply(s)
        got = _vthread_benefit(action, s, nxt, hw)
        x = 8 * (128 // 8)
        expected = bank_conflict_factor(x, hw.bank_width_elems, 1) / bank_conflict_factor(
            x, hw.bank_width_elems, 2
        )
        assert got == pytest.approx(expected)

    def test_outer_axis_neutral(self, gemm, hw):
        s = ETIR.from_tiles(gemm, {"i": 128, "j": 128}, {"i": 8, "j": 8})
        action = Action(ActionKind.VTHREAD_UP, 0)  # i is not innermost
        nxt = action.apply(s)
        assert _vthread_benefit(action, s, nxt, hw) == 1.0


class TestActionBenefit:
    def test_infeasible_scores_zero(self, hw):
        big = ops.matmul(4096, 4096, 4096)
        s = ETIR.from_tiles(big, {"i": 256, "j": 512, "k": 64})
        s2 = ETIR(s.compute, s.config, cur_level=2, num_levels=2)
        action = Action(ActionKind.TILE_UP, 0)
        nxt = action.apply(s2)
        if nxt is not None and not nxt.memory_ok(hw, strict=False):
            assert action_benefit(action, s2, nxt, hw) == 0.0

    def test_benefit_positive_for_legal_growth(self, gemm, hw):
        s = ETIR.initial(gemm)
        action = Action(ActionKind.TILE_UP, 0)
        nxt = action.apply(s)
        assert action_benefit(action, s, nxt, hw) > 0.0
