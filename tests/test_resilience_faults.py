"""Fault plans and the deterministic injector."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.resilience.deadline import CancelToken, CompileCancelled
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    FaultyMeasurer,
    InjectedFault,
    InjectedWorkerCrash,
    apply_fault,
)


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="explode")

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec(kind="raise", rate=1.5)

    def test_rejects_negative_seconds(self):
        with pytest.raises(ValueError, match="seconds"):
            FaultSpec(kind="slow", seconds=-1.0)

    def test_matches_family_and_attempt(self):
        spec = FaultSpec(kind="raise", family="gemm[i:s,j:s,k:r]", attempts=(0, 1))
        assert spec.matches("gemm[i:s,j:s,k:r]", 0)
        assert spec.matches("gemm[i:s,j:s,k:r]", 1)
        assert not spec.matches("gemm[i:s,j:s,k:r]", 2)
        assert not spec.matches("gemv[i:s,k:r]", 0)

    def test_wildcard_family_matches_all(self):
        spec = FaultSpec(kind="hang")
        assert spec.matches("anything", 0) and spec.matches("else", 7)

    def test_json_round_trip(self):
        for kind in FAULT_KINDS:
            spec = FaultSpec(kind=kind, family="f", rate=0.5,
                             attempts=(0, 2), seconds=0.1)
            again = FaultSpec.from_json(spec.to_json())
            assert again.kind == kind and again.rate == 0.5
            assert again.attempts == (0, 2)


class TestFaultPlan:
    def test_save_load_round_trip(self, tmp_path):
        plan = FaultPlan(
            faults=(FaultSpec(kind="raise", rate=0.25),
                    FaultSpec(kind="crash", family="gemm[i:s]")),
            seed=7,
        )
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_load_rejects_corrupt_json(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('{"faults": [')
        with pytest.raises(ValueError, match="corrupt fault plan"):
            FaultPlan.load(path)

    def test_load_rejects_wrong_shape(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('{"seed": 3}')
        with pytest.raises(ValueError, match="'faults' list"):
            FaultPlan.load(path)


class TestFaultInjector:
    def plan(self, rate=0.5, seed=0):
        return FaultPlan(faults=(FaultSpec(kind="raise", rate=rate),), seed=seed)

    def test_deterministic_across_injectors(self):
        a = FaultInjector(self.plan(), registry=MetricsRegistry())
        b = FaultInjector(self.plan(), registry=MetricsRegistry())
        decisions_a = [a.draw("fam", 0) is not None for _ in range(50)]
        decisions_b = [b.draw("fam", 0) is not None for _ in range(50)]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)  # rate is real

    def test_seed_changes_decisions(self):
        a = FaultInjector(self.plan(seed=0), registry=MetricsRegistry())
        b = FaultInjector(self.plan(seed=1), registry=MetricsRegistry())
        assert [a.draw("fam", 0) is not None for _ in range(60)] != [
            b.draw("fam", 0) is not None for _ in range(60)
        ]

    def test_rate_one_always_fires_rate_zero_never(self):
        always = FaultInjector(self.plan(rate=1.0), registry=MetricsRegistry())
        never = FaultInjector(self.plan(rate=0.0), registry=MetricsRegistry())
        assert all(always.draw("f", 0) for _ in range(10))
        assert not any(never.draw("f", 0) for _ in range(10))

    def test_first_matching_rule_wins(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="crash", family="gemm", rate=1.0),
            FaultSpec(kind="raise", rate=1.0),
        ))
        inj = FaultInjector(plan, registry=MetricsRegistry())
        assert inj.draw("gemm", 0).kind == "crash"
        assert inj.draw("other", 0).kind == "raise"

    def test_log_and_metrics_and_keys(self):
        registry = MetricsRegistry()
        inj = FaultInjector(self.plan(rate=1.0), registry=registry)
        inj.draw("fam", 0, key="gemm[64]")
        inj.draw("fam", 1, key="gemm[128]")
        assert len(inj.log) == 2
        assert inj.faulted_keys() == {"gemm[64]", "gemm[128]"}
        assert registry.counter(
            "resilience_faults_injected_total", kind="raise"
        ).value == 2


class TestApplyFault:
    def test_raise(self):
        with pytest.raises(InjectedFault):
            apply_fault(FaultSpec(kind="raise"))

    def test_crash_is_base_exception(self):
        with pytest.raises(InjectedWorkerCrash):
            apply_fault(FaultSpec(kind="crash"))
        assert not issubclass(InjectedWorkerCrash, Exception)

    def test_slow_returns(self):
        apply_fault(FaultSpec(kind="slow", seconds=0.0))  # no raise

    def test_hang_raises_after_elapsing(self):
        with pytest.raises(InjectedFault, match="hang"):
            apply_fault(FaultSpec(kind="hang", seconds=0.0))

    def test_hang_cancelled_by_token(self):
        token = CancelToken.after(0.01)
        with pytest.raises(CompileCancelled):
            apply_fault(FaultSpec(kind="hang", seconds=30.0), token)

    def test_corrupt_cache_is_noop_here(self):
        apply_fault(FaultSpec(kind="corrupt-cache"))  # service-level fault


class FakeMeasurer:
    simulated_seconds = 0.0

    def __init__(self):
        self.calls = 0

    def measure(self, state):
        self.calls += 1
        return state


class TestFaultyMeasurer:
    def test_fires_once_then_delegates(self):
        inner = FakeMeasurer()
        faulty = FaultyMeasurer(inner, FaultSpec(kind="raise"))
        with pytest.raises(InjectedFault):
            faulty.measure("s1")
        assert faulty.measure("s2") == "s2"  # second call passes through
        assert inner.calls == 1

    def test_delegates_attributes(self):
        faulty = FaultyMeasurer(FakeMeasurer(), FaultSpec(kind="slow", seconds=0.0))
        assert faulty.simulated_seconds == 0.0
