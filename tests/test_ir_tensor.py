"""Tensor declarations."""

import pytest

from repro.ir.tensor import TensorSpec


class TestTensorSpec:
    def test_basic_properties(self):
        t = TensorSpec("A", (4, 8))
        assert t.ndim == 2
        assert t.num_elems == 32
        assert t.dtype_bytes == 4
        assert t.nbytes == 128

    def test_float16_bytes(self):
        assert TensorSpec("A", (2,), "float16").nbytes == 4

    def test_int8(self):
        assert TensorSpec("A", (10,), "int8").nbytes == 10

    def test_empty_shape_rejected(self):
        with pytest.raises(ValueError, match="at least one dim"):
            TensorSpec("A", ())

    def test_nonpositive_dim_rejected(self):
        with pytest.raises(ValueError, match="non-positive"):
            TensorSpec("A", (4, 0))

    def test_unknown_dtype_rejected(self):
        with pytest.raises(ValueError, match="dtype"):
            TensorSpec("A", (4,), "float128")

    def test_shape_coerced_to_ints(self):
        t = TensorSpec("A", (4.0, 8.0))  # type: ignore[arg-type]
        assert t.shape == (4, 8)
        assert all(isinstance(d, int) for d in t.shape)

    def test_frozen(self):
        t = TensorSpec("A", (4,))
        with pytest.raises(AttributeError):
            t.name = "B"  # type: ignore[misc]
