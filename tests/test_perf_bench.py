"""The walk benchmark harness (repro.perf.bench) and its CLI gates."""

import argparse
import json

import pytest

import repro.perf.bench as bench_mod
from repro.cli import main
from repro.perf.bench import BENCH_SCHEMA, _best_of, run_walk_bench, write_bench


@pytest.fixture
def tiny_bench(monkeypatch):
    """Shrink the quick suite to one operator and a toy walk so a real
    end-to-end bench run stays test-sized."""
    monkeypatch.setattr(bench_mod, "QUICK_LABELS", ("V1",))
    monkeypatch.setattr(
        bench_mod,
        "_QUICK_CONFIG",
        dict(num_chains=1, max_iterations_per_chain=10, polish_steps=4),
    )


class TestBestOf:
    def test_keeps_fastest_run(self):
        runs = iter([{"total_wall_s": 3.0, "tag": "slow"},
                     {"total_wall_s": 1.0, "tag": "fast"},
                     {"total_wall_s": 2.0, "tag": "mid"}])
        best = _best_of(3, lambda: next(runs))
        assert best["tag"] == "fast"

    def test_nonpositive_repeats_run_once(self):
        calls = []
        _best_of(0, lambda: calls.append(1) or {"total_wall_s": 1.0})
        assert len(calls) == 1


class TestRunWalkBench:
    def test_payload_schema(self, hw, tiny_bench, tmp_path):
        payload = run_walk_bench(hw, quick=True)
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["device"] == hw.name
        assert payload["quick"] is True
        assert payload["suite"] == ["V1"]
        for section in ("scalar", "batched"):
            run = payload[section]
            assert run["total_iterations"] > 0
            assert run["states_per_sec"] > 0
            assert [op["label"] for op in run["ops"]] == ["V1"]
        assert payload["speedup_states_per_sec"] > 0
        assert set(payload["walker_scaling"]["runs"]) == {"1", "4"}
        assert payload["walker_scaling"]["scaling"] > 0
        assert payload["memo"]["misses"] > 0
        micro = payload["micro"]
        assert micro["sampled_states"] > 0
        assert micro["evaluate_scalar_us"] > 0
        assert micro["expand_batch_us"] > 0

        out = write_bench(payload, tmp_path / "BENCH_walk.json")
        assert json.loads(out.read_text())["schema"] == BENCH_SCHEMA

    def test_walks_identical_across_paths(self, hw, tiny_bench):
        # Scalar and batched pricing must walk the same states: identical
        # iteration counts and identical best latencies per op.
        payload = run_walk_bench(hw, quick=True)
        for s_op, b_op in zip(payload["scalar"]["ops"], payload["batched"]["ops"]):
            assert s_op["iterations"] == b_op["iterations"]
            assert s_op["best_latency_s"] == b_op["best_latency_s"]

    def test_repeats_reported(self, hw, tiny_bench):
        payload = run_walk_bench(hw, quick=True, repeats=2)
        assert payload["repeats"] == 2


class TestCliGates:
    def _payload(self, speedup, scaling):
        return {
            "schema": BENCH_SCHEMA,
            "device": "rtx4090",
            "quick": True,
            "repeats": 1,
            "suite": ["V1"],
            "scalar": {"states_per_sec": 100.0},
            "batched": {"states_per_sec": 100.0 * speedup},
            "speedup_states_per_sec": speedup,
            "memo": {"hits": 1, "misses": 1, "hit_rate": 0.5, "size": 1},
            "micro": {
                "sampled_states": 1,
                "evaluate_scalar_us": 1.0,
                "evaluate_batch_us_per_state": 1.0,
            },
            "walker_scaling": {"counts": [1, 4], "scaling": scaling},
        }

    def _run(self, monkeypatch, tmp_path, payload, *flags):
        monkeypatch.setattr(
            bench_mod, "run_walk_bench", lambda *a, **k: payload
        )
        return main(
            ["bench", "walk", "--quick",
             "--out", str(tmp_path / "B.json"), *flags]
        )

    def test_passing_gates_exit_zero(self, monkeypatch, tmp_path):
        rc = self._run(
            monkeypatch, tmp_path, self._payload(3.5, 2.5),
            "--min-speedup", "3.0", "--min-walker-scaling", "2.0",
        )
        assert rc == 0

    def test_speedup_gate_fails(self, monkeypatch, tmp_path, capsys):
        rc = self._run(
            monkeypatch, tmp_path, self._payload(2.0, 2.5),
            "--min-speedup", "3.0",
        )
        assert rc == 1
        assert "speedup" in capsys.readouterr().err

    def test_scaling_gate_fails(self, monkeypatch, tmp_path, capsys):
        rc = self._run(
            monkeypatch, tmp_path, self._payload(3.5, 1.4),
            "--min-walker-scaling", "2.0",
        )
        assert rc == 1
        assert "walker scaling" in capsys.readouterr().err

    def test_no_gates_always_pass(self, monkeypatch, tmp_path):
        rc = self._run(monkeypatch, tmp_path, self._payload(0.5, 0.5))
        assert rc == 0
