"""The walk benchmark harness (repro.perf.bench) and its CLI gates."""

import argparse
import json

import pytest

import repro.perf.bench as bench_mod
from repro.cli import main
from repro.perf.bench import (
    BENCH_SCHEMA,
    _best_of,
    _matched_speedup,
    _repeat_seeds,
    run_walk_bench,
    write_bench,
)


@pytest.fixture
def tiny_bench(monkeypatch):
    """Shrink the quick suite to one operator and a toy walk so a real
    end-to-end bench run stays test-sized."""
    monkeypatch.setattr(bench_mod, "QUICK_LABELS", ("V1",))
    monkeypatch.setattr(
        bench_mod,
        "_QUICK_CONFIG",
        dict(num_chains=1, max_iterations_per_chain=10, polish_steps=4),
    )


def _fake_run(states_per_sec, iterations=10, states=5, wall=1.0, tag=""):
    return {
        "total_iterations": iterations,
        "total_wall_s": wall,
        "states_per_sec": states_per_sec,
        "ops": [{"states_visited": states}],
        "tag": tag,
    }


class TestBestOf:
    def test_keeps_highest_throughput_run(self):
        runs = {1: _fake_run(100.0, tag="slow"),
                2: _fake_run(300.0, tag="fast"),
                3: _fake_run(200.0, tag="mid")}
        best = _best_of([1, 2, 3], lambda s: runs[s])
        assert best["tag"] == "fast"

    def test_records_per_repeat_footprints(self):
        best = _best_of([7, 8], lambda s: _fake_run(float(s), iterations=s))
        assert [r["seed"] for r in best["repeat_runs"]] == [7, 8]
        assert [r["total_iterations"] for r in best["repeat_runs"]] == [7, 8]
        assert all(r["states_visited"] == 5 for r in best["repeat_runs"])
        assert [r["states_per_sec"] for r in best["repeat_runs"]] == [7.0, 8.0]


class TestMatchedSpeedup:
    def _sections(self, num_rates, den_rates):
        num = _best_of(list(range(len(num_rates))), lambda s: _fake_run(num_rates[s]))
        den = _best_of(list(range(len(den_rates))), lambda s: _fake_run(den_rates[s]))
        return num, den

    def test_pairs_by_repeat_not_by_section_best(self):
        # Section bests are 900 (repeat 1) and 300 (repeat 0): comparing
        # them cross-repeat would claim 3.0x.  Matched pairs give
        # 600/300=2.0 and 900/200=4.5; the best matched pair wins.
        num, den = self._sections([600.0, 900.0], [300.0, 200.0])
        assert _matched_speedup(num, den) == 4.5

    def test_single_repeat_is_the_plain_ratio(self):
        num, den = self._sections([800.0], [200.0])
        assert _matched_speedup(num, den) == 4.0

    def test_zero_denominator_repeats_are_skipped(self):
        num, den = self._sections([800.0, 100.0], [0.0, 50.0])
        assert _matched_speedup(num, den) == 2.0
        num, den = self._sections([800.0], [0.0])
        assert _matched_speedup(num, den) == 0.0


class TestRepeatSeeds:
    def test_single_repeat_keeps_root_seed(self):
        assert _repeat_seeds(42, 1) == [42]
        assert _repeat_seeds(42, 0) == [42]

    def test_repeat_zero_keeps_root_seed(self):
        seeds = _repeat_seeds(42, 3)
        assert seeds[0] == 42
        assert len(seeds) == 3

    def test_substreams_deterministic_and_distinct(self):
        a = _repeat_seeds(42, 4)
        b = _repeat_seeds(42, 4)
        assert a == b
        assert len(set(a)) == 4
        # A different root seed spawns a different family.
        assert _repeat_seeds(43, 4)[1:] != a[1:]


class TestRunWalkBench:
    def test_payload_schema(self, hw, tiny_bench, tmp_path):
        payload = run_walk_bench(hw, quick=True)
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["device"] == hw.name
        assert payload["quick"] is True
        assert payload["suite"] == ["V1"]
        for section in ("scalar", "batched", "soa"):
            run = payload[section]
            assert run["total_iterations"] > 0
            assert run["states_per_sec"] > 0
            assert [op["label"] for op in run["ops"]] == ["V1"]
            assert [r["seed"] for r in run["repeat_runs"]] == [0]
        assert payload["speedup_states_per_sec"] > 0
        assert payload["soa_speedup_states_per_sec"] > 0
        assert payload["repeat_seeds"] == [0]
        assert set(payload["walker_scaling"]["runs"]) == {"1", "4"}
        assert payload["walker_scaling"]["scaling"] > 0
        assert payload["memo"]["misses"] > 0
        micro = payload["micro"]
        assert micro["sampled_states"] > 0
        assert micro["evaluate_scalar_us"] > 0
        assert micro["expand_batch_us"] > 0
        assert micro["expand_soa_us"] > 0

        out = write_bench(payload, tmp_path / "BENCH_walk.json")
        assert json.loads(out.read_text())["schema"] == BENCH_SCHEMA

    def test_walks_identical_across_paths(self, hw, tiny_bench):
        # Scalar, batched, and SoA pricing must walk the same states:
        # identical iteration counts and identical best latencies per op
        # (repeats=1, so all three sections run the same seed).
        payload = run_walk_bench(hw, quick=True)
        for s_op, b_op, a_op in zip(
            payload["scalar"]["ops"],
            payload["batched"]["ops"],
            payload["soa"]["ops"],
        ):
            assert s_op["iterations"] == b_op["iterations"] == a_op["iterations"]
            assert (
                s_op["best_latency_s"]
                == b_op["best_latency_s"]
                == a_op["best_latency_s"]
            )
            assert (
                s_op["states_visited"]
                == b_op["states_visited"]
                == a_op["states_visited"]
            )

    def test_repeats_reported(self, hw, tiny_bench):
        payload = run_walk_bench(hw, quick=True, repeats=2)
        assert payload["repeats"] == 2
        assert len(payload["repeat_seeds"]) == 2
        assert payload["repeat_seeds"][0] == 0

    def test_repeat_determinism(self, hw, tiny_bench):
        # Same root seed ⇒ identical per-repeat seeds, iteration counts,
        # and states visited, run to run — the repeats draw from a
        # deterministic SeedSequence spawn tree, not from a shared RNG.
        a = run_walk_bench(hw, quick=True, repeats=2, seed=5)
        b = run_walk_bench(hw, quick=True, repeats=2, seed=5)
        assert a["repeat_seeds"] == b["repeat_seeds"]
        for section in ("scalar", "batched", "soa"):
            fa = [
                (r["seed"], r["total_iterations"], r["states_visited"])
                for r in a[section]["repeat_runs"]
            ]
            fb = [
                (r["seed"], r["total_iterations"], r["states_visited"])
                for r in b[section]["repeat_runs"]
            ]
            assert fa == fb
        # Distinct repeats genuinely walk distinct seeds.
        assert len({r["seed"] for r in a["soa"]["repeat_runs"]}) == 2


class TestCliGates:
    def _payload(self, speedup, scaling, soa_speedup=5.0):
        return {
            "schema": BENCH_SCHEMA,
            "device": "rtx4090",
            "quick": True,
            "repeats": 1,
            "suite": ["V1"],
            "scalar": {"states_per_sec": 100.0},
            "batched": {"states_per_sec": 100.0 * speedup},
            "soa": {"states_per_sec": 100.0 * soa_speedup},
            "speedup_states_per_sec": speedup,
            "soa_speedup_states_per_sec": soa_speedup,
            "memo": {"hits": 1, "misses": 1, "hit_rate": 0.5, "size": 1},
            "micro": {
                "sampled_states": 1,
                "evaluate_scalar_us": 1.0,
                "evaluate_batch_us_per_state": 1.0,
            },
            "walker_scaling": {"counts": [1, 4], "scaling": scaling},
        }

    def _run(self, monkeypatch, tmp_path, payload, *flags):
        monkeypatch.setattr(
            bench_mod, "run_walk_bench", lambda *a, **k: payload
        )
        return main(
            ["bench", "walk", "--quick",
             "--out", str(tmp_path / "B.json"), *flags]
        )

    def test_passing_gates_exit_zero(self, monkeypatch, tmp_path):
        rc = self._run(
            monkeypatch, tmp_path, self._payload(3.5, 2.5),
            "--min-speedup", "3.0", "--min-walker-scaling", "2.0",
        )
        assert rc == 0

    def test_speedup_gate_fails(self, monkeypatch, tmp_path, capsys):
        rc = self._run(
            monkeypatch, tmp_path, self._payload(2.0, 2.5),
            "--min-speedup", "3.0",
        )
        assert rc == 1
        assert "speedup" in capsys.readouterr().err

    def test_soa_speedup_gate_fails(self, monkeypatch, tmp_path, capsys):
        rc = self._run(
            monkeypatch, tmp_path, self._payload(3.5, 2.5, soa_speedup=3.0),
            "--min-soa-speedup", "4.0",
        )
        assert rc == 1
        assert "soa speedup" in capsys.readouterr().err

    def test_soa_speedup_gate_passes(self, monkeypatch, tmp_path):
        rc = self._run(
            monkeypatch, tmp_path, self._payload(3.5, 2.5, soa_speedup=4.5),
            "--min-soa-speedup", "4.0",
        )
        assert rc == 0

    def test_scaling_gate_fails(self, monkeypatch, tmp_path, capsys):
        rc = self._run(
            monkeypatch, tmp_path, self._payload(3.5, 1.4),
            "--min-walker-scaling", "2.0",
        )
        assert rc == 1
        assert "walker scaling" in capsys.readouterr().err

    def test_no_gates_always_pass(self, monkeypatch, tmp_path):
        rc = self._run(monkeypatch, tmp_path, self._payload(0.5, 0.5))
        assert rc == 0
