"""The shared bounded metrics memo (repro.perf.memo)."""

import pytest

from repro.core.graph import ConstructionGraph
from repro.core.policy import TransitionPolicy
from repro.ir import operators as ops
from repro.ir.etir import ETIR
from repro.obs.metrics import MetricsRegistry
from repro.perf.memo import MetricsMemo, get_memo, reset_memo
from repro.sim.costmodel import CostModel
from repro.utils.rng import spawn_rng


def walk_states(hw, n, compute=None):
    """``n`` distinct states from a deterministic walk (hashable, feasible mix)."""
    compute = compute or ops.matmul(512, 256, 512, "memo_g")
    graph = ConstructionGraph(hw)
    policy = TransitionPolicy(graph, spawn_rng(0, "memo-test", compute.name))
    state = ETIR.initial(compute, num_levels=hw.num_cache_levels)
    pool = {state.key(): state}
    step = 0
    while len(pool) < n:
        edge = policy.select(state, step * 0.1, frozenset())
        if edge is None:
            break
        state = edge.dst
        pool.setdefault(state.key(), state)
        step += 1
    states = list(pool.values())
    assert len(states) == n, "walk too short for requested pool"
    return states


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestMemoization:
    def test_hit_returns_identical_object(self, hw, registry):
        memo = MetricsMemo(registry=registry)
        (state,) = walk_states(hw, 1)
        first = memo.evaluate(hw, state)
        again = memo.evaluate(hw, state)
        assert again is first  # value-transparent: the exact same object

    def test_matches_direct_cost_model(self, hw, registry):
        memo = MetricsMemo(registry=registry)
        model = CostModel(hw)
        for state in walk_states(hw, 10):
            assert memo.evaluate(hw, state) == model.evaluate(state)

    def test_hit_miss_accounting(self, hw, registry):
        memo = MetricsMemo(registry=registry)
        states = walk_states(hw, 5)
        for s in states:
            memo.evaluate(hw, s)
        for s in states:
            memo.evaluate(hw, s)
        stats = memo.stats()
        assert stats["misses"] == 5
        assert stats["hits"] == 5
        assert stats["hit_rate"] == pytest.approx(0.5)

    def test_distinct_devices_get_distinct_slots(self, hw, edge_hw, registry):
        memo = MetricsMemo(registry=registry)
        (state,) = walk_states(hw, 1)
        server = memo.evaluate(hw, state)
        edge = memo.evaluate(edge_hw, state)
        assert len(memo) == 2
        assert server.latency_s != edge.latency_s

    def test_latency_batch_matches_scalar(self, hw, registry):
        memo = MetricsMemo(registry=registry)
        states = walk_states(hw, 8)
        memo.evaluate(hw, states[0])  # mix hits and misses
        lats = memo.latency_batch(hw, states)
        assert list(lats) == [CostModel(hw).latency(s) for s in states]

    def test_batch_counts_hits_and_misses(self, hw, registry):
        memo = MetricsMemo(registry=registry)
        states = walk_states(hw, 6)
        for s in states[:2]:
            memo.evaluate(hw, s)
        memo.evaluate_batch(hw, states)
        stats = memo.stats()
        assert stats["hits"] == 2
        assert stats["misses"] == 6  # 2 scalar warm-ups + 4 batch misses


class TestBounding:
    def test_lru_eviction_bounds_size(self, hw, registry):
        memo = MetricsMemo(capacity=4, registry=registry)
        states = walk_states(hw, 7)
        for s in states:
            memo.evaluate(hw, s)
        stats = memo.stats()
        assert stats["size"] <= 4
        assert stats["evictions"] == 3

    def test_recently_used_survives_eviction(self, hw, registry):
        memo = MetricsMemo(capacity=3, registry=registry)
        states = walk_states(hw, 4)
        a, b, c, d = states
        for s in (a, b, c):
            memo.evaluate(hw, s)
        kept = memo.evaluate(hw, a)  # refresh a; b is now oldest
        memo.evaluate(hw, d)  # evicts b
        before = memo.stats()["misses"]
        assert memo.evaluate(hw, a) is kept
        assert memo.stats()["misses"] == before

    def test_capacity_zero_is_passthrough(self, hw, registry):
        memo = MetricsMemo(capacity=0, registry=registry)
        (state,) = walk_states(hw, 1)
        first = memo.evaluate(hw, state)
        second = memo.evaluate(hw, state)
        assert first == second
        assert len(memo) == 0
        assert memo.stats()["hits"] == 0
        assert memo.stats()["misses"] == 2

    def test_negative_capacity_rejected(self, registry):
        with pytest.raises(ValueError, match="capacity"):
            MetricsMemo(capacity=-1, registry=registry)

    def test_steady_state_size_over_repeated_pools(self, hw, registry):
        # Re-pricing the same states forever must not grow the memo.
        memo = MetricsMemo(capacity=64, registry=registry)
        states = walk_states(hw, 20)
        for _ in range(5):
            memo.evaluate_batch(hw, states)
        assert len(memo) == 20
        assert memo.stats()["evictions"] == 0

    def test_clear_resets_counters(self, hw, registry):
        memo = MetricsMemo(registry=registry)
        memo.evaluate_batch(hw, walk_states(hw, 3))
        memo.clear()
        assert len(memo) == 0
        stats = memo.stats()
        assert stats["hits"] == stats["misses"] == stats["evictions"] == 0


class TestRegistryMirror:
    def test_counters_mirrored(self, hw):
        registry = MetricsRegistry()
        memo = MetricsMemo(capacity=4, registry=registry)
        states = walk_states(hw, 6)
        for s in states:
            memo.evaluate(hw, s)
        memo.evaluate(hw, states[-1])
        assert registry.counter("perf_memo_hits_total").value == 1
        assert registry.counter("perf_memo_misses_total").value == 6
        assert registry.counter("perf_memo_evictions_total").value == 2
        assert registry.gauge("perf_memo_size").value == len(memo)


class TestProcessDefault:
    def test_get_memo_is_shared(self):
        reset_memo()
        try:
            assert get_memo() is get_memo()
        finally:
            reset_memo()

    def test_reset_gives_fresh_instance(self):
        reset_memo()
        try:
            first = get_memo()
            reset_memo()
            assert get_memo() is not first
        finally:
            reset_memo()
