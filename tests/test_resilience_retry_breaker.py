"""Retry policy, cancel tokens, and circuit breakers."""

import pytest

from repro.resilience.breaker import BreakerBoard, BreakerConfig, CircuitBreaker
from repro.resilience.deadline import CancelToken, CompileCancelled
from repro.resilience.retry import RetryPolicy


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError, match="attempt_timeout_s"):
            RetryPolicy(attempt_timeout_s=0.0)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_backoff_s=0.1, multiplier=2.0, max_backoff_s=0.3, jitter=0.0
        )
        assert policy.backoff_s(0) == pytest.approx(0.1)
        assert policy.backoff_s(1) == pytest.approx(0.2)
        assert policy.backoff_s(2) == pytest.approx(0.3)  # capped
        assert policy.backoff_s(9) == pytest.approx(0.3)

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RetryPolicy(base_backoff_s=0.1, jitter=0.5)
        values = {policy.backoff_s(0, seed=s, family="f") for s in range(20)}
        assert len(values) > 1  # jitter actually varies by seed
        for v in values:
            assert 0.05 <= v <= 0.1  # within [raw*(1-jitter), raw]
        assert policy.backoff_s(0, seed=3, family="f") == policy.backoff_s(
            0, seed=3, family="f"
        )


class TestCancelToken:
    def test_unbounded_token_never_expires(self):
        token = CancelToken()
        assert not token.expired()
        assert token.remaining_s() is None
        token.check()  # no raise

    def test_after_deadline_expires(self):
        token = CancelToken.after(0.0)
        assert token.expired()
        with pytest.raises(CompileCancelled):
            token.check()

    def test_after_none_is_unbounded(self):
        assert not CancelToken.after(None).expired()

    def test_manual_cancel(self):
        token = CancelToken()
        token.cancel()
        with pytest.raises(CompileCancelled):
            token.check()

    def test_sleep_is_cancelled_mid_way(self):
        token = CancelToken.after(0.02)
        with pytest.raises(CompileCancelled):
            token.sleep(30.0, slice_s=0.005)


class ManualClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def tripped(breaker, times):
    for _ in range(times):
        breaker.record_failure()


class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=10.0, probes=1):
        clock = ManualClock()
        transitions = []
        breaker = CircuitBreaker(
            "fam",
            BreakerConfig(
                failure_threshold=threshold,
                cooldown_s=cooldown,
                probe_budget=probes,
            ),
            on_transition=lambda f, old, new: transitions.append((old, new)),
            clock=clock,
        )
        return breaker, clock, transitions

    def test_config_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError, match="probe_budget"):
            BreakerConfig(probe_budget=0)

    def test_opens_after_threshold(self):
        breaker, _, transitions = self.make(threshold=3)
        tripped(breaker, 2)
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        assert transitions == [("closed", "open")]

    def test_success_resets_failure_count(self):
        breaker, _, _ = self.make(threshold=3)
        tripped(breaker, 2)
        breaker.record_success()
        tripped(breaker, 2)
        assert breaker.state == "closed"

    def test_half_open_after_cooldown_and_probe_budget(self):
        breaker, clock, _ = self.make(threshold=1, cooldown=5.0, probes=1)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now = 5.0
        assert breaker.state == "half_open"
        assert breaker.allow()  # the single probe
        assert not breaker.allow()  # budget exhausted

    def test_probe_success_closes(self):
        breaker, clock, transitions = self.make(threshold=1, cooldown=5.0)
        breaker.record_failure()
        clock.now = 5.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert transitions == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        breaker, clock, _ = self.make(threshold=1, cooldown=5.0)
        breaker.record_failure()
        clock.now = 5.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        clock.now = 9.0  # cooldown restarted at t=5
        assert breaker.state == "open"
        clock.now = 10.0
        assert breaker.state == "half_open"


class TestBreakerBoard:
    def test_get_or_create_per_family(self):
        board = BreakerBoard()
        assert board.for_family("a") is board.for_family("a")
        assert board.for_family("a") is not board.for_family("b")

    def test_states_and_open_families(self):
        board = BreakerBoard(BreakerConfig(failure_threshold=1))
        tripped(board.for_family("bad"), 1)
        board.for_family("good").record_success()
        assert board.states() == {"bad": "open", "good": "closed"}
        assert board.open_families() == ["bad"]
