"""§IV-D analysis: irreducibility, aperiodicity, grouping."""

import pytest

from repro.core import convergence
from repro.core.actions import ActionKind
from repro.core.graph import ConstructionGraph
from repro.ir import operators as ops
from repro.ir.etir import ETIR


class TestSameLevelGroups:
    def test_groups_by_outer_context(self):
        keys = [
            ("g", ((1, 4), (1, 2)), (1, 1), 1),
            ("g", ((2, 4), (1, 2)), (1, 1), 1),  # same outer (4, 2)
            ("g", ((1, 8), (1, 2)), (1, 1), 1),  # different outer
            ("g", ((1, 4), (1, 2)), (1, 1), 2),  # different level
        ]
        groups = convergence.same_level_groups(keys)
        sizes = sorted(len(v) for v in groups.values())
        assert sizes == [1, 1, 2]


class TestAnalysis:
    @pytest.fixture(scope="class")
    def report(self, hw):
        # Non-power-of-two extents -> odd tiling cycles -> aperiodicity.
        gemm = ops.matmul(12, 12, 4, "g")
        return convergence.analyze(gemm, hw, max_nodes=8000)

    def test_space_fully_materialized(self, report):
        assert report.num_states < 8000  # exhausted, not truncated

    def test_irreducible_within_levels(self, report):
        assert all(report.irreducible_per_level.values())

    def test_aperiodic_lazy_chain(self, report):
        assert report.aperiodic

    def test_value_iteration_converges(self, report):
        assert 1 <= report.value_iterations < 1000

    def test_stationary_mass_positive(self, report):
        assert 0.0 < report.stationary_mass_on_top_decile <= 1.0

    def test_strict_chain_on_pow2_lattice_is_periodic(self, hw):
        # The always-move chain on a power-of-two lattice has only even
        # cycles; laziness (the roulette fall-through) is what fixes this.
        forbid = frozenset({ActionKind.VTHREAD_UP, ActionKind.VTHREAD_DOWN})
        graph = ConstructionGraph(hw, forbid=forbid)
        start = ETIR.initial(ops.matmul(16, 16, 16, "g"))
        graph.explore(start, max_nodes=4000)
        assert not convergence.is_aperiodic(graph, lazy=False)
        assert convergence.is_aperiodic(graph, lazy=True)
