"""Device specifications."""

import pytest

from repro.hardware import HardwareSpec, MemoryLevel, generic_gpu, orin_nano, rtx4090


class TestDevices:
    @pytest.mark.parametrize("factory", [rtx4090, orin_nano, generic_gpu])
    def test_validate_passes(self, factory):
        factory().validate()

    def test_rtx4090_peak_flops(self):
        hw = rtx4090()
        # 128 SMs x 128 cores x 2.52 GHz x 2 (FMA) ~ 82.6 TFLOPS.
        assert hw.peak_flops == pytest.approx(82.6e12, rel=0.01)

    def test_orin_peak_flops(self):
        hw = orin_nano()
        assert hw.peak_flops == pytest.approx(1.28e12, rel=0.01)

    def test_cloud_much_faster_than_edge(self):
        assert rtx4090().peak_flops > 30 * orin_nano().peak_flops
        assert (
            rtx4090().dram.bandwidth_bytes_per_s
            > 10 * orin_nano().dram.bandwidth_bytes_per_s
        )

    def test_level_lookup(self):
        hw = rtx4090()
        assert hw.level("dram") is hw.dram
        assert hw.level("smem") is hw.smem
        assert hw.level("regs") is hw.regs
        assert hw.level("l2") is hw.l2

    def test_unknown_level_raises(self):
        with pytest.raises(KeyError, match="no memory level"):
            rtx4090().level("l3")

    def test_bandwidth_increases_toward_core(self):
        hw = rtx4090()
        bws = [lv.bandwidth_bytes_per_s for lv in hw.levels]
        assert bws == sorted(bws)

    def test_latency_decreases_toward_core(self):
        hw = rtx4090()
        lats = [lv.latency_s for lv in hw.levels]
        assert lats == sorted(lats, reverse=True)

    def test_num_cache_levels_is_two(self):
        assert rtx4090().num_cache_levels == 2

    def test_schedulable_levels(self):
        hw = rtx4090()
        names = [lv.name for lv in hw.schedulable_levels()]
        assert names == ["dram", "smem", "regs"]


class TestMemoryLevel:
    def test_access_time_formula(self):
        lv = MemoryLevel("x", 1024, 1e9, 1e-6)
        # L + S/B
        assert lv.access_time(1e9) == pytest.approx(1e-6 + 1.0)

    def test_access_time_zero_bytes(self):
        lv = MemoryLevel("x", 1024, 1e9, 1e-6)
        assert lv.access_time(0) == pytest.approx(1e-6)


class TestValidation:
    def _base_levels(self):
        return (
            MemoryLevel("dram", 2**30, 1e11, 500e-9),
            MemoryLevel("l2", 2**20, 1e12, 100e-9),
            MemoryLevel("smem", 2**15, 1e13, 10e-9, per_block=True),
            MemoryLevel("regs", 2**14, 1e14, 1e-9, per_block=True),
        )

    def test_missing_level_rejected(self):
        spec = HardwareSpec(
            name="bad", num_sms=4, clock_hz=1e9, fp32_cores_per_sm=32,
            levels=self._base_levels()[:2],
        )
        with pytest.raises(ValueError, match="missing memory level"):
            spec.validate()

    def test_no_levels_rejected(self):
        spec = HardwareSpec(
            name="bad", num_sms=4, clock_hz=1e9, fp32_cores_per_sm=32
        )
        with pytest.raises(ValueError, match="no memory levels"):
            spec.validate()

    def test_decreasing_bandwidth_rejected(self):
        lv = list(self._base_levels())
        lv[1] = MemoryLevel("l2", 2**20, 1e10, 100e-9)  # slower than DRAM
        spec = HardwareSpec(
            name="bad", num_sms=4, clock_hz=1e9, fp32_cores_per_sm=32,
            levels=tuple(lv),
        )
        with pytest.raises(ValueError, match="bandwidth"):
            spec.validate()

    def test_increasing_latency_rejected(self):
        lv = list(self._base_levels())
        lv[1] = MemoryLevel("l2", 2**20, 1e12, 900e-9)  # slower than DRAM
        spec = HardwareSpec(
            name="bad", num_sms=4, clock_hz=1e9, fp32_cores_per_sm=32,
            levels=tuple(lv),
        )
        with pytest.raises(ValueError, match="latency"):
            spec.validate()
