"""ETIR: the tile-matrix states of the construction graph."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import operators as ops
from repro.ir.etir import ETIR, TileConfig


@pytest.fixture
def gemm():
    return ops.matmul(128, 64, 256, "g")


class TestConstruction:
    def test_initial_state(self, gemm):
        s = ETIR.initial(gemm)
        assert s.cur_level == 2
        assert s.num_levels == 2
        assert all(s.tile(i, 1) == 1 and s.tile(i, 2) == 1 for i in range(3))
        assert s.total_vthreads() == 1

    def test_from_tiles(self, gemm):
        s = ETIR.from_tiles(gemm, {"i": 32, "j": 64, "k": 16}, {"i": 4, "j": 8})
        assert s.block_tiles() == {"i": 32, "j": 64, "k": 16}
        assert s.thread_tiles() == {"i": 4, "j": 8, "k": 1}

    def test_from_tiles_clips_to_extent(self, gemm):
        s = ETIR.from_tiles(gemm, {"i": 10_000})
        assert s.block_tiles()["i"] == 128

    def test_from_tiles_clips_thread_to_block(self, gemm):
        s = ETIR.from_tiles(gemm, {"i": 8}, {"i": 32})
        assert s.thread_tiles()["i"] == 8

    def test_nesting_violation_rejected(self, gemm):
        cfg = TileConfig(
            tiles=((8, 4), (1, 1), (1, 1)),  # T1 > T2 on axis i
            vthreads=(1, 1, 1),
        )
        with pytest.raises(ValueError, match="smaller than inner"):
            ETIR(gemm, cfg, cur_level=1, num_levels=2)

    def test_block_tile_beyond_extent_rejected(self, gemm):
        cfg = TileConfig(
            tiles=((1, 256), (1, 1), (1, 1)),  # extent(i)=128
            vthreads=(1, 1, 1),
        )
        with pytest.raises(ValueError, match="exceeds"):
            ETIR(gemm, cfg, cur_level=1, num_levels=2)

    def test_reduce_vthread_rejected(self, gemm):
        cfg = TileConfig(
            tiles=((2, 2), (1, 1), (2, 2)),
            vthreads=(1, 1, 2),  # k is reduce
        )
        with pytest.raises(ValueError, match="reduce axis"):
            ETIR(gemm, cfg, cur_level=1, num_levels=2)

    def test_vthread_above_thread_tile_rejected(self, gemm):
        cfg = TileConfig(
            tiles=((2, 4), (1, 1), (1, 1)),
            vthreads=(4, 1, 1),  # v > T1
        )
        with pytest.raises(ValueError, match="vthreads"):
            ETIR(gemm, cfg, cur_level=1, num_levels=2)

    def test_bad_level_bounds(self, gemm):
        cfg = TileConfig(tiles=((1, 1),) * 3, vthreads=(1, 1, 1))
        with pytest.raises(ValueError, match="cur_level"):
            ETIR(gemm, cfg, cur_level=3, num_levels=2)


class TestIdentity:
    def test_equality_and_hash(self, gemm):
        a = ETIR.from_tiles(gemm, {"i": 8}, {"i": 2})
        b = ETIR.from_tiles(gemm, {"i": 8}, {"i": 2})
        c = ETIR.from_tiles(gemm, {"i": 16}, {"i": 2})
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_key_contains_level(self, gemm):
        s = ETIR.initial(gemm)
        assert s.key()[-1] == 2


class TestDerivedQuantities:
    def test_threads_per_block(self, gemm):
        s = ETIR.from_tiles(gemm, {"i": 32, "j": 64, "k": 16}, {"i": 4, "j": 8})
        assert s.threads_per_block() == (32 // 4) * (64 // 8)

    def test_reduce_axis_contributes_no_threads(self, gemm):
        s = ETIR.from_tiles(gemm, {"i": 8, "k": 64}, {"i": 8, "k": 1})
        assert s.threads_per_block() == 1

    def test_num_blocks(self, gemm):
        s = ETIR.from_tiles(gemm, {"i": 32, "j": 64, "k": 64})
        assert s.num_blocks() == (128 // 32) * (256 // 64)

    def test_smem_footprint(self, gemm):
        s = ETIR.from_tiles(gemm, {"i": 16, "j": 8, "k": 4})
        assert s.smem_footprint_bytes() == (16 * 4 + 4 * 8) * 4

    def test_thread_stride(self, gemm):
        s = ETIR.from_tiles(gemm, {"i": 32}, {"i": 8}, {"i": 4})
        assert s.thread_stride(0) == 2

    def test_traffic_orders(self, gemm):
        s = ETIR.from_tiles(gemm, {"i": 32, "j": 32, "k": 16}, {"i": 4, "j": 4})
        assert s.smem_traffic_bytes() > s.dram_traffic_bytes()


class TestMemoryCheck:
    def test_initial_feasible(self, gemm, hw):
        assert ETIR.initial(gemm).memory_ok(hw)

    def test_smem_overflow_infeasible(self, hw):
        big = ops.matmul(4096, 4096, 4096)
        s = ETIR.from_tiles(big, {"i": 512, "j": 512, "k": 64})
        assert s.smem_footprint_bytes() > hw.smem.capacity_bytes
        assert not s.memory_ok(hw)
        assert not s.memory_ok(hw, strict=False)

    def test_thread_overflow_strict_only(self, hw):
        big = ops.matmul(4096, 4096, 4096)
        s = ETIR.from_tiles(big, {"i": 128, "j": 128})  # 16384 threads
        assert not s.memory_ok(hw)
        assert s.memory_ok(hw, strict=False)

    def test_register_cap_always_enforced(self, hw):
        big = ops.matmul(4096, 4096, 4096)
        s = ETIR.from_tiles(big, {"i": 64, "j": 64, "k": 64}, {"i": 32, "j": 32, "k": 8})
        assert s.regs_per_thread() > 255
        assert not s.memory_ok(hw, strict=False)


class TestActions:
    def test_scaled_tile_up(self, gemm):
        s = ETIR.initial(gemm)
        up = s.scaled_tile(0, up=True)
        assert up is not None
        assert up.tile(0, 2) == 2
        assert s.tile(0, 2) == 1  # immutable original

    def test_scaled_tile_up_clamps_to_extent(self):
        g = ops.matmul(12, 12, 12)
        s = ETIR.from_tiles(g, {"i": 8}, {"i": 1})
        # from_tiles leaves us at level 1; adjust level-2 tile explicitly.
        up = s.scaled_tile_at(0, 2, up=True)
        assert up is not None and up.tile(0, 2) == 12

    def test_scaled_tile_up_at_extent_returns_none(self, gemm):
        s = ETIR.from_tiles(gemm, {"i": 128})
        assert s.scaled_tile_at(0, 2, up=True) is None

    def test_scaled_tile_down_below_inner_returns_none(self, gemm):
        s = ETIR.from_tiles(gemm, {"i": 8}, {"i": 8})
        assert s.scaled_tile_at(0, 2, up=False) is None

    def test_scaled_tile_down_below_one_returns_none(self, gemm):
        s = ETIR.initial(gemm)
        assert s.scaled_tile(0, up=False) is None

    def test_cache_advance(self, gemm):
        s = ETIR.initial(gemm)
        s1 = s.with_cache_advance()
        assert s1 is not None and s1.cur_level == 1
        assert s1.with_cache_advance() is None

    def test_with_vthread(self, gemm):
        s = ETIR.from_tiles(gemm, {"i": 32}, {"i": 8})
        v = s.with_vthread(0, 4)
        assert v is not None and v.vthreads(0) == 4
        assert v.total_vthreads() == 4

    def test_vthread_on_reduce_returns_none(self, gemm):
        s = ETIR.from_tiles(gemm, {"k": 32}, {"k": 8})
        assert s.with_vthread(2, 2) is None

    def test_vthread_above_t1_returns_none(self, gemm):
        s = ETIR.from_tiles(gemm, {"i": 32}, {"i": 2})
        assert s.with_vthread(0, 4) is None

    def test_tile_down_blocked_by_vthreads(self, gemm):
        s = ETIR.from_tiles(gemm, {"i": 32}, {"i": 4}, {"i": 4})
        assert s.scaled_tile_at(0, 1, up=False) is None


class TestDescribe:
    def test_describe_mentions_axes(self, gemm):
        s = ETIR.from_tiles(gemm, {"i": 32}, {"i": 8}, {"i": 2})
        text = s.describe()
        assert "i:[32/8]" in text and "v2" in text


@settings(max_examples=40, deadline=None)
@given(
    bi=st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128]),
    bj=st.sampled_from([1, 2, 4, 8, 16, 32, 64]),
    ti=st.sampled_from([1, 2, 4, 8]),
)
def test_property_invariants_hold(bi, bj, ti):
    g = ops.matmul(128, 64, 256, "g")
    s = ETIR.from_tiles(g, {"i": bi, "j": bj}, {"i": min(ti, bi)})
    # Nesting invariant.
    for idx in range(3):
        assert s.tile(idx, 1) <= s.tile(idx, 2)
    # Launch geometry covers the iteration space.
    assert s.num_blocks() * s.threads_per_block() >= 1
    assert s.smem_footprint_bytes() > 0
