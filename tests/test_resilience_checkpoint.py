"""Unit tests for repro.resilience.checkpoint: the WalkCheckpoint wire
format, the cadence policy, the Checkpointer accounting, and the
crash-safe CheckpointStore (including quarantine of corrupt records)."""

import json
import pickle

import numpy as np
import pytest

from repro.core.constructor import Gensor, GensorConfig
from repro.ir import operators as ops
from repro.obs.metrics import MetricsRegistry
from repro.resilience.checkpoint import (
    CheckpointPolicy,
    CheckpointStore,
    Checkpointer,
    WalkCheckpoint,
    build_walk_checkpoint,
    config_to_state,
    state_config,
    walk_config_digest,
)
from repro.resilience.deadline import CancelToken
from repro.utils.rng import restore_rng, rng_state, spawn_rng


def gemm(name="ckpt_op"):
    return ops.matmul(64, 48, 80, name)


def make_checkpoint(hw, compute=None, chain=0, iteration=9, total=9):
    compute = compute if compute is not None else gemm()
    cfg = GensorConfig(seed=3)
    state = Gensor(hw, cfg).seed_states(compute)[0]
    rng = spawn_rng(cfg.seed, "gensor", compute.name, chain)
    rng.random(5)  # consume a bit so the stream position is non-trivial
    return build_walk_checkpoint(
        compute,
        cfg,
        num_levels=hw.num_cache_levels,
        chain=chain,
        iteration=iteration,
        total_steps=total,
        temperature=0.42,
        state_config=state_config(state),
        rng=rng,
        candidate_configs=[state_config(state)],
        node_keys=[state_config(state)],
        nodes_seen=17,
    ), cfg


class TestWalkCheckpoint:
    def test_json_round_trip_is_lossless(self, hw):
        ck, _ = make_checkpoint(hw)
        # through an actual JSON string, like the on-disk store does
        back = WalkCheckpoint.from_json(json.loads(json.dumps(ck.to_json())))
        assert back == ck

    def test_rng_state_survives_json_and_continues_stream(self, hw):
        ck, _ = make_checkpoint(hw)
        back = WalkCheckpoint.from_json(json.loads(json.dumps(ck.to_json())))
        a = restore_rng(ck.rng_state)
        b = restore_rng(back.rng_state)
        assert a.random(16).tobytes() == b.random(16).tobytes()
        assert a.choice(97, size=8).tolist() == b.choice(97, size=8).tolist()

    def test_pickle_round_trip(self, hw):
        ck, _ = make_checkpoint(hw)
        assert pickle.loads(pickle.dumps(ck)) == ck

    def test_matches_and_require(self, hw):
        ck, cfg = make_checkpoint(hw)
        assert ck.matches(gemm(), cfg)
        ck.require(gemm(), cfg)
        # different shape
        assert not ck.matches(ops.matmul(32, 32, 32, "other"), cfg)
        # walk-relevant config drift invalidates
        drifted = GensorConfig(seed=4)
        assert not ck.matches(gemm(), drifted)
        with pytest.raises(ValueError):
            ck.require(gemm(), drifted)

    def test_digest_ignores_post_walk_knobs(self):
        base = GensorConfig(seed=3)
        assert walk_config_digest(base) == walk_config_digest(
            GensorConfig(seed=3, top_k=7, polish_steps=99)
        )
        assert walk_config_digest(base) != walk_config_digest(
            GensorConfig(seed=3, cooling=0.5)
        )

    def test_state_config_round_trip(self, hw):
        compute = gemm()
        state = Gensor(hw, GensorConfig()).seed_states(compute)[1]
        rebuilt = config_to_state(
            compute, state_config(state), state.num_levels
        )
        assert rebuilt.key() == state.key()

    def test_polish_checkpoint_matches_only_polish(self, hw):
        compute = gemm()
        state = Gensor(hw, GensorConfig()).seed_states(compute)[0]
        ck = WalkCheckpoint.for_polish(compute, state, steps_done=5)
        assert ck.matches_polish(compute)
        assert not ck.matches(compute, GensorConfig())
        with pytest.raises(ValueError):
            ck.require(compute, GensorConfig())


class TestCheckpointPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(every_steps=0)
        with pytest.raises(ValueError):
            CheckpointPolicy(near_every_steps=0)
        with pytest.raises(ValueError):
            CheckpointPolicy(near_deadline_s=-1.0)

    def test_interval_far_from_deadline(self):
        policy = CheckpointPolicy(
            every_steps=64, near_deadline_s=1.0, near_every_steps=8
        )
        assert policy.interval_for(None) == 64
        assert policy.interval_for(CancelToken(None)) == 64  # unlimited
        assert policy.interval_for(CancelToken.after(100.0)) == 64

    def test_interval_tightens_near_deadline(self):
        policy = CheckpointPolicy(
            every_steps=64, near_deadline_s=1.0, near_every_steps=8
        )
        assert policy.interval_for(CancelToken.after(0.5)) == 8
        cancelled = CancelToken(None)
        cancelled.cancel()
        assert policy.interval_for(cancelled) == 8

    def test_never_loosens(self):
        policy = CheckpointPolicy(
            every_steps=4, near_deadline_s=1.0, near_every_steps=8
        )
        assert policy.interval_for(CancelToken.after(0.5)) == 4


class TestCheckpointer:
    def test_cadence_and_wasted_accounting(self, hw):
        ck, _ = make_checkpoint(hw)
        saved = []
        cp = Checkpointer(CheckpointPolicy(every_steps=5), sink=saved.append)
        for step in range(1, 13):
            cp.on_step(None, lambda: ck)
        # fired at steps 5 and 10; steps 11-12 are at risk
        assert cp.saved == 2
        assert saved == [ck, ck]
        assert cp.steps_seen == 12
        assert cp.wasted_states() == 12 - ck.total_steps

    def test_builder_runs_only_when_due(self):
        calls = []
        cp = Checkpointer(CheckpointPolicy(every_steps=100))

        def builder():
            calls.append(1)
            raise AssertionError("must not build before the cadence fires")

        for _ in range(99):
            cp.on_step(None, builder)
        assert calls == []

    def test_start_from_seeds_offsets(self, hw):
        ck, _ = make_checkpoint(hw, total=40)
        cp = Checkpointer(CheckpointPolicy(every_steps=64))
        cp.start_from(ck)
        assert cp.last is ck
        assert cp.steps_seen == 40
        assert cp.wasted_states() == 0
        cp.on_step(None, lambda: ck)
        assert cp.wasted_states() == 1


class TestCheckpointStore:
    def test_save_load_round_trip(self, hw, tmp_path):
        ck, _ = make_checkpoint(hw)
        registry = MetricsRegistry()
        store = CheckpointStore(tmp_path, registry=registry)
        store.save("rtx4090", ck)
        assert store.load("rtx4090", ck.compute_key) == ck
        assert registry.counter("resilience_checkpoint_saves_total").value == 1
        assert registry.counter("resilience_checkpoint_loads_total").value == 1

    def test_missing_returns_none(self, tmp_path):
        store = CheckpointStore(tmp_path, registry=MetricsRegistry())
        assert store.load("rtx4090", "nope") is None

    def test_discard_removes_record(self, hw, tmp_path):
        ck, _ = make_checkpoint(hw)
        store = CheckpointStore(tmp_path, registry=MetricsRegistry())
        store.save("rtx4090", ck)
        store.discard("rtx4090", ck.compute_key)
        assert store.load("rtx4090", ck.compute_key) is None
        store.discard("rtx4090", ck.compute_key)  # idempotent

    def test_wrong_device_quarantined(self, hw, tmp_path):
        ck, _ = make_checkpoint(hw)
        store = CheckpointStore(tmp_path, registry=MetricsRegistry())
        store.save("rtx4090", ck)
        # same path digest only for the same device, so force the payload
        path = store.path_for("rtx4090", ck.compute_key)
        payload = json.loads(path.read_text())
        payload["device"] = "orin_nano"
        path.write_text(json.dumps(payload))
        assert store.load("rtx4090", ck.compute_key) is None
        assert (tmp_path / ".quarantine" / path.name).exists()

    def test_corruption_quarantines_with_unique_names(self, hw, tmp_path):
        """Repeated corruption of one key leaves one record per incident."""
        ck, _ = make_checkpoint(hw)
        registry = MetricsRegistry()
        store = CheckpointStore(tmp_path, registry=registry)
        path = store.path_for("rtx4090", ck.compute_key)
        for _ in range(3):
            store.save("rtx4090", ck)
            raw = path.read_text()
            path.write_text(raw[: len(raw) // 2])  # truncate mid-record
            assert store.load("rtx4090", ck.compute_key) is None
        qdir = tmp_path / ".quarantine"
        records = [
            p for p in qdir.iterdir() if not p.name.endswith(".reason")
        ]
        assert len(records) == 3
        assert len({p.name for p in records}) == 3
        assert (
            registry.counter("resilience_checkpoint_corrupt_total").value == 3
        )

    def test_flipped_bit_detected_by_crc(self, hw, tmp_path):
        ck, _ = make_checkpoint(hw)
        store = CheckpointStore(tmp_path, registry=MetricsRegistry())
        store.save("rtx4090", ck)
        path = store.path_for("rtx4090", ck.compute_key)
        payload = json.loads(path.read_text())
        payload["checkpoint"]["iteration"] += 1  # bit flip, stale CRC
        path.write_text(json.dumps(payload))
        assert store.load("rtx4090", ck.compute_key) is None

    def test_save_leaves_no_journal_droppings(self, hw, tmp_path):
        ck, _ = make_checkpoint(hw)
        store = CheckpointStore(tmp_path, registry=MetricsRegistry())
        store.save("rtx4090", ck)
        leftovers = [
            p for p in tmp_path.iterdir() if ".journal." in p.name
        ]
        assert leftovers == []


class TestRngHelpers:
    def test_rng_state_restore_is_exact(self):
        gen = spawn_rng(7, "x", "y", 2)
        gen.random(11)
        clone = restore_rng(rng_state(gen))
        assert clone.random(64).tobytes() == gen.random(64).tobytes()

    def test_restored_generator_is_independent(self):
        gen = spawn_rng(7, "x")
        clone = restore_rng(rng_state(gen))
        gen.random(5)
        before = clone.bit_generator.state
        assert before == restore_rng(before).bit_generator.state
        assert isinstance(np.asarray(clone.random(3)), np.ndarray)
