"""Benchmark workload tables."""

import pytest

from repro.workloads import TABLE4_CONFIGS, build, by_label, labels
from repro.workloads.ablation import ABLATION_CONFIGS, build_ablation
from repro.workloads.unbalanced import UNBALANCED_GEMMS, build_unbalanced


class TestTable4:
    def test_thirty_two_configs(self):
        assert len(TABLE4_CONFIGS) == 32

    def test_eight_per_family(self):
        for family in ("conv2d", "gemm", "gemv", "avgpool2d"):
            assert len(labels(family)) == 8

    def test_labels_unique(self):
        all_labels = labels()
        assert len(set(all_labels)) == 32

    def test_published_subset(self):
        published = {c.label for c in TABLE4_CONFIGS if c.published}
        assert published == {
            "C1", "C2", "C3", "M1", "M2", "M3", "V1", "V2", "V3",
            "P1", "P2", "P3",
        }

    @pytest.mark.parametrize("cfg", TABLE4_CONFIGS, ids=lambda c: c.label)
    def test_every_config_builds(self, cfg):
        op = cfg.build()
        assert op.name == cfg.label
        assert op.kind == cfg.family
        assert op.total_flops > 0

    def test_published_shapes_match_paper(self):
        m1 = build("M1")
        assert m1.extents() == {"i": 8192, "j": 8192, "k": 8192}
        m2 = build("M2")
        assert m2.extents() == {"i": 65536, "k": 4, "j": 1024}
        v1 = build("V1")
        assert v1.extents() == {"i": 16384, "n": 16384}
        c1 = build("C1")
        assert c1.axis("f").extent == 256
        assert c1.axis("oh").extent == 14  # (30-3)//2 + 1

    def test_by_label_unknown(self):
        with pytest.raises(KeyError):
            by_label("Z9")


class TestUnbalanced:
    def test_exact_paper_shapes(self):
        shapes = [s for _l, s in UNBALANCED_GEMMS]
        assert shapes == [(65536, 4, 1024), (32768, 64, 2048), (16384, 32, 1024)]

    def test_builders(self):
        built = build_unbalanced()
        assert len(built) == 3
        label, op = built[0]
        assert label == "[65536,4,1024]"
        assert op.extents() == {"i": 65536, "k": 4, "j": 1024}


class TestAblation:
    def test_four_families(self):
        assert len(ABLATION_CONFIGS) == 4

    def test_builders(self):
        built = build_ablation()
        kinds = [op.kind for _t, op in built]
        assert kinds == ["conv2d", "gemm", "gemv", "avgpool2d"]
