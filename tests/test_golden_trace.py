"""Golden-trace determinism regression.

A fixed seed plus a fixed :class:`GensorConfig` must reproduce the exact
same Markov walk — the same chosen action at every step and the same
final ETIR tile configuration. The expected traces live as JSON fixtures
under ``tests/fixtures/``; any drift in RNG spawning, action enumeration
order, benefit scoring, or probability normalization shows up here as a
loud unified diff.

To regenerate the fixtures after an *intentional* behavior change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_trace.py
"""

import difflib
import json
import os
from pathlib import Path

import pytest

from repro.core import Gensor, GensorConfig
from repro.ir import operators as ops
from repro.obs import RecordingTracer
from repro.perf.soa import soa_walk_disabled, soa_walk_forced

FIXTURES = Path(__file__).parent / "fixtures"

GOLDEN_CFG = GensorConfig(
    seed=7, num_chains=2, top_k=4, polish_steps=10, max_iterations_per_chain=60
)

WORKLOADS = {
    "golden_trace_matmul.json": lambda: ops.matmul(128, 64, 96, "golden_mm"),
    "golden_trace_conv.json": lambda: ops.conv2d(
        1, 8, 14, 14, 16, 3, 3, 1, "golden_conv"
    ),
}


def walk_signature(hw, compute, **compile_kwargs):
    """Deterministic summary of one traced construction walk."""
    tracer = RecordingTracer()
    result = Gensor(hw, GOLDEN_CFG).compile(
        compute, tracer=tracer, **compile_kwargs
    )
    steps = []
    for event in tracer.by_name("walk_step"):
        chosen = event.args["actions"][event.args["chosen"]]
        steps.append(
            {
                "chain": event.args["chain"],
                "kind": chosen["kind"],
                "axis": chosen["axis"],
                "appended": event.args["appended"],
            }
        )
    best = result.best
    return {
        "workload": compute.name,
        "config": {
            "seed": GOLDEN_CFG.seed,
            "num_chains": GOLDEN_CFG.num_chains,
            "top_k": GOLDEN_CFG.top_k,
            "polish_steps": GOLDEN_CFG.polish_steps,
            "max_iterations_per_chain": GOLDEN_CFG.max_iterations_per_chain,
        },
        "iterations": result.iterations,
        "steps": steps,
        "best": {
            "cur_level": best.cur_level,
            "tiles": [list(t) for t in best.config.tiles],
            "vthreads": list(best.config.vthreads),
        },
    }


def _dump(sig) -> str:
    return json.dumps(sig, indent=2, sort_keys=True) + "\n"


@pytest.mark.parametrize("fixture_name", sorted(WORKLOADS))
def test_golden_trace(hw, fixture_name):
    actual = walk_signature(hw, WORKLOADS[fixture_name]())
    path = FIXTURES / fixture_name

    if os.environ.get("REPRO_REGEN_GOLDEN"):
        FIXTURES.mkdir(exist_ok=True)
        path.write_text(_dump(actual))
        pytest.skip(f"regenerated {path}")

    assert path.exists(), (
        f"missing golden fixture {path} — run with REPRO_REGEN_GOLDEN=1 to"
        " create it"
    )
    expected = json.loads(path.read_text())
    if actual != expected:
        diff = "\n".join(
            difflib.unified_diff(
                _dump(expected).splitlines(),
                _dump(actual).splitlines(),
                fromfile=f"expected ({fixture_name})",
                tofile="actual",
                lineterm="",
            )
        )
        pytest.fail(
            "golden trace drifted — the seeded Markov walk no longer "
            "reproduces the recorded action sequence / final tile config.\n"
            "If the change is intentional, regenerate with "
            f"REPRO_REGEN_GOLDEN=1.\n{diff}"
        )


def test_signature_is_stable_across_runs(hw):
    """Two in-process runs agree — rules out hidden global state."""
    compute = WORKLOADS["golden_trace_matmul.json"]
    assert walk_signature(hw, compute()) == walk_signature(hw, compute())


@pytest.mark.parametrize("fixture_name", sorted(WORKLOADS))
def test_empty_epilogue_pool_matches_fixture_bytes(hw, fixture_name):
    """Program-fusion plumbing is invisible to single-op compiles.

    ``compile(..., epilogues=(), walkers=1)`` must replay the recorded
    fixture byte-for-byte: with an empty pool the walk enumerates the same
    actions, draws the same RNG stream, and ranks with the same objective
    as before fusion existed.
    """
    path = FIXTURES / fixture_name
    assert path.exists(), f"missing golden fixture {path}"
    actual = _dump(
        walk_signature(
            hw, WORKLOADS[fixture_name](), epilogues=(), walkers=1
        )
    )
    assert actual == path.read_text(), (
        "an empty epilogue pool perturbed the single-op walk"
    )


@pytest.mark.parametrize("fixture_name", sorted(WORKLOADS))
def test_golden_trace_byte_identical_on_both_walk_paths(hw, fixture_name):
    """The SoA walk core replays every golden fixture byte-for-byte.

    Each workload runs once under the forced SoA path and once under the
    object path; both serialized signatures must equal the stored fixture
    *bytes*.  Nothing is regenerated here — a parity drift on either path
    (or any fixture churn) fails loudly instead of being papered over.
    """
    path = FIXTURES / fixture_name
    assert path.exists(), (
        f"missing golden fixture {path} — run test_golden_trace with "
        "REPRO_REGEN_GOLDEN=1 to create it"
    )
    expected_bytes = path.read_text()
    with soa_walk_forced():
        soa_bytes = _dump(walk_signature(hw, WORKLOADS[fixture_name]()))
    with soa_walk_disabled():
        object_bytes = _dump(walk_signature(hw, WORKLOADS[fixture_name]()))
    assert soa_bytes == expected_bytes, "SoA path drifted from the fixture"
    assert object_bytes == expected_bytes, "object path drifted from the fixture"
