"""Operator zoo: shape and numerical correctness of every builder."""

import numpy as np
import pytest

from repro.ir import operators as ops


class TestMatmul:
    def test_shapes(self):
        g = ops.matmul(8, 4, 6)
        assert g.output.shape == (8, 6)
        assert g.kind == "gemm"

    def test_numerics(self):
        g = ops.matmul(5, 7, 3)
        x = g.random_inputs()
        assert np.allclose(g.evaluate(x), x["A"] @ x["B"])

    def test_flops(self):
        assert ops.matmul(2, 3, 4).total_flops == 2 * 2 * 3 * 4


class TestGemv:
    def test_shapes(self):
        g = ops.gemv(8, 4)
        assert g.output.shape == (8,)

    def test_numerics(self):
        g = ops.gemv(6, 9)
        x = g.random_inputs()
        assert np.allclose(g.evaluate(x), x["A"] @ x["x"])


class TestBatchedMatmul:
    def test_numerics(self):
        g = ops.batched_matmul(3, 4, 5, 6)
        x = g.random_inputs()
        assert np.allclose(g.evaluate(x), np.einsum("bik,bkj->bij", x["A"], x["B"]))


class TestConv2d:
    def test_output_size_stride1(self):
        g = ops.conv2d(1, 2, 10, 10, 4, 3, 3, 1)
        assert g.output.shape == (1, 4, 8, 8)

    def test_output_size_stride2(self):
        g = ops.conv2d(1, 2, 11, 11, 4, 3, 3, 2)
        assert g.output.shape == (1, 4, 5, 5)

    def test_input_smaller_than_kernel_rejected(self):
        with pytest.raises(ValueError, match="smaller than kernel"):
            ops.conv2d(1, 2, 2, 2, 4, 3, 3, 1)

    def test_numerics_against_direct_loop(self):
        g = ops.conv2d(2, 3, 6, 6, 4, 3, 3, 1)
        x = g.random_inputs()
        I, K = x["I"], x["K"]
        ref = np.zeros(g.output.shape)
        for n in range(2):
            for f in range(4):
                for oh in range(4):
                    for ow in range(4):
                        ref[n, f, oh, ow] = np.sum(
                            I[n, :, oh : oh + 3, ow : ow + 3] * K[f]
                        )
        assert np.allclose(g.evaluate(x), ref)

    def test_numerics_strided(self):
        g = ops.conv2d(1, 2, 7, 7, 3, 3, 3, 2)
        x = g.random_inputs()
        I, K = x["I"], x["K"]
        ref = np.zeros(g.output.shape)
        for f in range(3):
            for oh in range(3):
                for ow in range(3):
                    ref[0, f, oh, ow] = np.sum(
                        I[0, :, 2 * oh : 2 * oh + 3, 2 * ow : 2 * ow + 3] * K[f]
                    )
        assert np.allclose(g.evaluate(x), ref)

    def test_flops(self):
        g = ops.conv2d(1, 2, 6, 6, 4, 3, 3, 1)
        # 2 * N*F*OH*OW*C*R*S
        assert g.total_flops == 2 * 1 * 4 * 4 * 4 * 2 * 3 * 3


class TestDepthwiseConv2d:
    def test_numerics(self):
        g = ops.depthwise_conv2d(2, 3, 6, 6, 3, 3, 1)
        x = g.random_inputs()
        I, K = x["I"], x["K"]
        ref = np.zeros(g.output.shape)
        for n in range(2):
            for c in range(3):
                for oh in range(4):
                    for ow in range(4):
                        ref[n, c, oh, ow] = np.sum(
                            I[n, c, oh : oh + 3, ow : ow + 3] * K[c]
                        )
        assert np.allclose(g.evaluate(x), ref)


class TestAvgPool2d:
    def test_numerics(self):
        g = ops.avgpool2d(1, 2, 6, 6, 2, 2)
        x = g.random_inputs()
        I = x["I"]
        ref = np.zeros(g.output.shape)
        for c in range(2):
            for oh in range(3):
                for ow in range(3):
                    ref[0, c, oh, ow] = I[
                        0, c, 2 * oh : 2 * oh + 2, 2 * ow : 2 * ow + 2
                    ].mean()
        assert np.allclose(g.evaluate(x), ref)

    def test_scale_is_inverse_window(self):
        g = ops.avgpool2d(1, 1, 8, 8, 3, 2)
        assert g.scale == pytest.approx(1.0 / 9.0)


class TestElementwise:
    @pytest.mark.parametrize("fn", ["relu", "relu6", "tanh", "sigmoid", "gelu", "exp"])
    def test_fns_run(self, fn):
        g = ops.elementwise((3, 4), fn)
        x = g.random_inputs()
        out = g.evaluate(x)
        assert out.shape == (3, 4)

    def test_relu_numerics(self):
        g = ops.elementwise((4,), "relu")
        out = g.evaluate({"X": np.array([-2.0, -0.5, 0.5, 2.0])})
        assert np.allclose(out, [0, 0, 0.5, 2.0])

    def test_relu6_clips(self):
        g = ops.elementwise((2,), "relu6")
        out = g.evaluate({"X": np.array([10.0, -1.0])})
        assert np.allclose(out, [6.0, 0.0])

    def test_flops_per_point_one(self):
        assert ops.elementwise((4, 4)).total_flops == 16


class TestAdd:
    def test_cost_profile(self):
        g = ops.add((8, 8))
        assert len(g.inputs) == 2
        assert g.total_flops == 64

    def test_documented_product_semantics(self):
        # The contraction form multiplies inputs; cost profile matches add.
        g = ops.add((2,))
        out = g.evaluate({"X": np.array([2.0, 3.0]), "Z": np.array([4.0, 5.0])})
        assert np.allclose(out, [8.0, 15.0])


class TestProxies:
    def test_softmax_proxy_cost(self):
        g = ops.softmax_proxy(16, 64)
        assert g.kind == "softmax"
        assert g.flops_per_point == 5.0

    def test_layernorm_proxy_cost(self):
        g = ops.layernorm_proxy(16, 64)
        assert g.kind == "layernorm"
        assert g.flops_per_point == 6.0


class TestConvOutSize:
    @pytest.mark.parametrize(
        "in_size,kernel,stride,expected",
        [(10, 3, 1, 8), (11, 3, 2, 5), (7, 7, 1, 1), (230, 7, 2, 112)],
    )
    def test_values(self, in_size, kernel, stride, expected):
        assert ops.conv_out_size(in_size, kernel, stride) == expected
