"""Crash-safe schedule cache: checksums, atomic saves, quarantine.

The satellite contract: a truncated file, a flipped bit in one record,
or a crash mid-save each load with quarantine — never a crash, never
silently poisoned entries.
"""

import json
import os

import pytest

from repro.core.cache import (
    CachedSchedule,
    ScheduleCache,
    entry_checksum,
    shape_fingerprint,
)
from repro.ir import operators as ops
from repro.ir.etir import ETIR
from repro.obs.metrics import MetricsRegistry


def make_state(m=512, k=256, n=512, name="g"):
    g = ops.matmul(m, k, n, name)
    return ETIR.from_tiles(g, {"i": 64, "j": 64, "k": 32}, {"i": 4, "j": 4}, {"i": 2})


def saved_cache(hw, tmp_path, states=None):
    cache = ScheduleCache(hw)
    for state in states or [make_state(), make_state(1024, 256, 512, "h")]:
        cache.put(state, 1e-3)
    path = tmp_path / "cache.json"
    cache.save(path)
    return path


class TestChecksums:
    def test_saved_entries_carry_crcs(self, hw, tmp_path):
        path = saved_cache(hw, tmp_path)
        payload = json.loads(path.read_text())
        for data in payload["entries"].values():
            body = {k: v for k, v in data.items() if k != "crc"}
            assert data["crc"] == entry_checksum(body)

    def test_checksum_detects_any_field_change(self):
        entry = CachedSchedule.from_state(make_state(), 1e-3).to_json()
        crc = entry_checksum(entry)
        tampered = {**entry, "latency_s": entry["latency_s"] * 2}
        assert entry_checksum(tampered) != crc


class TestTruncatedFile:
    def test_loads_empty_with_quarantine(self, hw, tmp_path):
        path = saved_cache(hw, tmp_path)
        full = path.read_text()
        path.write_text(full[: len(full) // 2])  # crash mid-write
        registry = MetricsRegistry()
        loaded = ScheduleCache.load(path, hw, registry=registry)
        assert len(loaded) == 0
        assert len(loaded.quarantined) == 1
        assert "corrupt JSON" in loaded.quarantined[0]
        # the bad file moved aside so the next save starts clean
        assert not path.exists()
        assert (tmp_path / ".quarantine" / "cache.json").exists()
        assert registry.counter("cache_quarantined_total").value == 1

    def test_save_after_quarantine_round_trips(self, hw, tmp_path):
        path = saved_cache(hw, tmp_path)
        path.write_text(path.read_text()[:40])
        loaded = ScheduleCache.load(path, hw)
        loaded.put(make_state(), 2e-3)
        loaded.save(path)
        again = ScheduleCache.load(path, hw)
        assert len(again) == 1 and not again.quarantined


class TestFlippedBit:
    def corrupt_one_entry(self, path):
        payload = json.loads(path.read_text())
        key = sorted(payload["entries"])[0]
        payload["entries"][key]["latency_s"] *= 2  # bit-rot, stale crc
        path.write_text(json.dumps(payload))
        return key

    def test_bad_record_quarantined_rest_load(self, hw, tmp_path):
        path = saved_cache(hw, tmp_path)
        bad_key = self.corrupt_one_entry(path)
        registry = MetricsRegistry()
        loaded = ScheduleCache.load(path, hw, registry=registry)
        assert len(loaded) == 1  # the healthy sibling survived
        assert len(loaded.quarantined) == 1
        assert "checksum mismatch" in loaded.quarantined[0]
        assert registry.counter("cache_quarantined_total").value == 1
        # the quarantine record names the key and preserves the payload
        records = list((tmp_path / ".quarantine").iterdir())
        assert len(records) == 1
        record = json.loads(records[0].read_text())
        assert record["key"] == bad_key
        assert "checksum mismatch" in record["reason"]

    def test_strict_mode_still_raises(self, hw, tmp_path):
        path = saved_cache(hw, tmp_path)
        self.corrupt_one_entry(path)
        with pytest.raises(ValueError, match="checksum mismatch"):
            ScheduleCache.load(path, hw, strict=True)

    def test_missing_field_quarantined(self, hw, tmp_path):
        path = saved_cache(hw, tmp_path)
        payload = json.loads(path.read_text())
        key = sorted(payload["entries"])[0]
        entry = payload["entries"][key]
        del entry["block_tiles"]
        entry["crc"] = entry_checksum(
            {k: v for k, v in entry.items() if k != "crc"}
        )  # crc valid, shape wrong
        path.write_text(json.dumps(payload))
        loaded = ScheduleCache.load(path, hw)
        assert len(loaded) == 1 and len(loaded.quarantined) == 1

    def test_legacy_entry_without_crc_still_loads(self, hw, tmp_path):
        path = saved_cache(hw, tmp_path)
        payload = json.loads(path.read_text())
        for entry in payload["entries"].values():
            entry.pop("crc")
        path.write_text(json.dumps(payload))
        loaded = ScheduleCache.load(path, hw)
        assert len(loaded) == 2 and not loaded.quarantined


class TestPartialWrite:
    def test_injected_replace_failure_leaves_old_file_intact(
        self, hw, tmp_path, monkeypatch
    ):
        """A crash at the journal->live rename never corrupts the live file."""
        path = saved_cache(hw, tmp_path, states=[make_state()])
        before = path.read_text()
        cache = ScheduleCache.load(path, hw)
        cache.put(make_state(2048, 256, 512, "new"), 1e-3)

        real_replace = os.replace

        def failing_replace(src, dst):
            if str(dst) == str(path):
                raise OSError("injected crash at rename")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", failing_replace)
        with pytest.raises(OSError, match="injected crash"):
            cache.save(path)
        monkeypatch.undo()
        # old file byte-identical, journal cleaned up (the ``.lock``
        # sibling is the persistent cross-process guard), and it still loads
        assert path.read_text() == before
        assert {p.name for p in tmp_path.iterdir()} == {
            "cache.json", "cache.json.lock",
        }
        loaded = ScheduleCache.load(path, hw)
        assert len(loaded) == 1 and not loaded.quarantined

    def test_orphaned_journal_is_ignored_by_load(self, hw, tmp_path):
        path = saved_cache(hw, tmp_path)
        (tmp_path / f".cache.json.journal.{os.getpid()}").write_text("{trunc")
        loaded = ScheduleCache.load(path, hw)
        assert len(loaded) == 2 and not loaded.quarantined


class TestCorruptChaosHook:
    def test_corrupt_then_recompile_path(self, hw):
        cache = ScheduleCache(hw)
        state = make_state()
        cache.put(state, 1e-3)
        assert cache.corrupt(state.compute)
        entry = cache.get(state.compute)
        # readers see a dud: instantiate fails, nearest skips it
        assert entry.instantiate(state.compute) is None
        assert cache.nearest(state.compute) is None
        # a recompile's put overwrites the dud (inf latency always loses)
        cache.put(state, 5e-3)
        assert cache.get(state.compute).latency_s == 5e-3

    def test_corrupt_missing_key_is_false(self, hw):
        assert not ScheduleCache(hw).corrupt("ghost[key]")

    def test_corrupt_by_fingerprint_string(self, hw):
        cache = ScheduleCache(hw)
        state = make_state()
        cache.put(state, 1e-3)
        assert cache.corrupt(shape_fingerprint(state.compute))


def _chaos_writer(idx: int, path_str: str, acked_path_str: str) -> None:
    """Child process body: put+merge-save in a loop, acking each save.

    Module-level so the 'spawn' start method can pickle it.  A key is
    acked (flushed+fsynced to the sidecar) only AFTER save() returned —
    the durability contract under test is exactly those keys.
    """
    from repro.hardware import rtx4090

    hw = rtx4090()
    cache = ScheduleCache(hw)
    with open(acked_path_str, "a", encoding="utf-8") as acked:
        for i in range(500):
            state = make_state(
                64 * ((i % 40) + 1), 32, 64 + 16 * idx, name=f"w{idx}_{i}"
            )
            cache.put(state, 1e-3 + i * 1e-6)
            cache.save(path_str)
            acked.write(shape_fingerprint(state.compute) + "\n")
            acked.flush()
            os.fsync(acked.fileno())


class TestConcurrentSaveChaos:
    """Two processes hammer merge-saves on one file and get SIGKILLed.

    The acceptance bar: the live file never corrupts, and no entry whose
    save was acknowledged is ever lost — crash-mid-save only ever costs
    the unacked tail.
    """

    def test_killed_writers_lose_no_acked_entries(self, hw, tmp_path):
        import multiprocessing as mp
        import signal
        import time

        ctx = mp.get_context("spawn")
        path = tmp_path / "cache.json"
        sidecars = [tmp_path / f"acked{i}.log" for i in range(2)]
        workers = [
            ctx.Process(
                target=_chaos_writer, args=(i, str(path), str(sidecars[i]))
            )
            for i in range(2)
        ]
        for p in workers:
            p.start()
        try:
            # let both make real progress, then kill them mid-flight
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                acked = [
                    s.read_text().splitlines() if s.exists() else []
                    for s in sidecars
                ]
                if all(len(lines) >= 5 for lines in acked):
                    break
                time.sleep(0.02)
            else:
                pytest.fail("chaos writers made no progress")
        finally:
            for p in workers:
                if p.pid and p.is_alive():
                    os.kill(p.pid, signal.SIGKILL)
            for p in workers:
                p.join(timeout=10)
        acked_keys = {
            key
            for sidecar in sidecars
            if sidecar.exists()
            for key in sidecar.read_text().split()
        }
        assert acked_keys  # the run exercised real saves
        loaded = ScheduleCache.load(path, hw)
        assert not loaded.quarantined  # file is wholly intact
        payload = json.loads(path.read_text())
        missing = acked_keys - set(payload["entries"])
        assert not missing, f"{len(missing)} acked entries lost: {sorted(missing)[:3]}"
        # and the survivor file is still writable by a fresh process
        cache = ScheduleCache(hw)
        cache.put(make_state(name="after_chaos"), 1e-3)
        cache.save(path)
        merged = json.loads(path.read_text())
        assert set(payload["entries"]) <= set(merged["entries"])


class TestRepeatedCorruption:
    """Satellite contract: every corruption incident leaves its own
    quarantine record — repeats must not overwrite earlier forensics —
    and the healthy entries keep loading warm each time."""

    def test_file_incidents_get_unique_quarantine_names(self, hw, tmp_path):
        registry = MetricsRegistry()
        for _ in range(3):
            path = saved_cache(hw, tmp_path)
            path.write_text(path.read_text()[:40])  # crash mid-write
            loaded = ScheduleCache.load(path, hw, registry=registry)
            assert len(loaded) == 0 and len(loaded.quarantined) == 1
        records = list((tmp_path / ".quarantine").iterdir())
        assert len(records) == 3
        assert len({p.name for p in records}) == 3
        assert registry.counter("cache_quarantined_total").value == 3

    def test_entry_incidents_keep_warm_siblings_loading(self, hw, tmp_path):
        warm = make_state()
        warm_key = shape_fingerprint(warm.compute)
        victim = make_state(1024, 256, 512, "victim")
        victim_key = shape_fingerprint(victim.compute)
        registry = MetricsRegistry()
        for round_no in range(1, 4):
            path = saved_cache(hw, tmp_path, states=[warm, victim])
            payload = json.loads(path.read_text())
            payload["entries"][victim_key]["latency_s"] *= 2  # stale crc
            path.write_text(json.dumps(payload))
            loaded = ScheduleCache.load(path, hw, registry=registry)
            # the warm sibling still serves; only the victim quarantined
            assert loaded.get(warm.compute) is not None
            assert loaded.get(victim.compute) is None
            records = [
                p
                for p in (tmp_path / ".quarantine").iterdir()
                if ".json." in p.name or p.name.endswith(".json")
            ]
            assert len(records) == round_no
            assert len({p.name for p in records}) == round_no
        assert registry.counter("cache_quarantined_total").value == 3
