#!/usr/bin/env python3
"""Compare every compilation method on one unbalanced LLM-style GEMM.

The paper's motivating scenario: a GEMM whose dimensions are wildly
unbalanced (here the Table V shape [32768, 64, 2048]).  Hand libraries
quantize to fixed templates, search burns its budget, and tree
construction cannot backtrack — the regime where Gensor's graph traversal
pays off.

The script prints a league table of latency, achieved FLOPS, and compile
cost for cuBLAS, PyTorch eager, Roller, Ansor, and Gensor on the simulated
RTX 4090.

Run:  python examples/compare_compilers.py
"""

from repro import Gensor, operators, rtx4090
from repro.baselines import Ansor, AnsorConfig, PyTorchEager, Roller, VendorLibrary
from repro.utils.tables import Table


def main() -> None:
    hw = rtx4090()
    gemm = operators.matmul(32768, 64, 2048, name="unbalanced_gemm")
    print("operator:", gemm.render())
    print(f"arithmetic intensity: {gemm.arithmetic_intensity():.1f} FLOPs/byte\n")

    methods = {
        "cublas": VendorLibrary(hw),
        "pytorch": PyTorchEager(hw),
        "roller": Roller(hw),
        "ansor": Ansor(hw, AnsorConfig(num_trials=400)),
        "gensor": Gensor(hw),
    }

    table = Table(
        "Method", "Latency (ms)", "TFLOPS", "Compile (s)", "Schedule",
        title="Unbalanced GEMM [32768, 64, 2048] on the simulated RTX 4090",
    )
    results = {}
    for name, compiler in methods.items():
        res = compiler.compile(gemm)
        results[name] = res
        table.add_row(
            name,
            f"{res.best_metrics.latency_s * 1e3:.3f}",
            f"{res.best_metrics.achieved_flops / 1e12:.2f}",
            f"{res.compile_seconds:.2f}" if hasattr(res, "compile_seconds") else "-",
            res.best.describe(),
        )
    print(table.render())

    gensor = results["gensor"]
    roller = results["roller"]
    print(
        f"\nGensor vs Roller: "
        f"{roller.best_metrics.latency_s / gensor.best_metrics.latency_s:.2f}x faster "
        f"kernels at {gensor.compile_seconds:.1f}s compile cost "
        f"(Ansor spent {results['ansor'].compile_seconds:.0f}s)."
    )


if __name__ == "__main__":
    main()
