#!/usr/bin/env python3
"""Quickstart: compile one operator with Gensor and inspect everything.

Covers the end-to-end flow in ~40 lines:

1. declare a GEMM with the tensor-expression API,
2. compile it with Gensor on the simulated RTX 4090,
3. read the winning schedule, its predicted hardware metrics, and the
   compile-cost breakdown,
4. verify the schedule numerically against the declarative definition,
5. emit the CUDA-like kernel source.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Gensor, operators, rtx4090
from repro.codegen import emit_cuda, lower_etir
from repro.sim.executor import execute_tiled


def main() -> None:
    hw = rtx4090()

    # 1. Declare the computation (C[i, j] = sum_k A[i, k] * B[k, j]).
    gemm = operators.matmul(2048, 1024, 2048, name="quickstart_gemm")
    print("operator:", gemm.render())
    print(f"workload: {gemm.total_flops / 1e9:.1f} GFLOPs\n")

    # 2. Compile: annealed Markov walk over the construction graph,
    #    analytical ranking, one top-k measurement round.
    result = Gensor(hw).compile(gemm)

    # 3. Inspect the outcome.
    print("winning schedule:", result.best.describe())
    print("predicted:", result.best_metrics.summary())
    print(
        f"construction: {result.iterations} iterations over "
        f"{result.states_visited} states, "
        f"compile cost {result.compile_seconds:.1f}s "
        f"({result.simulated_measure_s:.1f}s simulated profiling)\n"
    )

    # 4. Prove the schedule computes the right thing: execute its tiling
    #    functionally and compare against NumPy.
    small = operators.matmul(128, 96, 160, name="check_gemm")
    check = Gensor(hw).compile(small)
    inputs = small.random_inputs()
    out = execute_tiled(check.best, inputs)
    assert np.allclose(out, inputs["A"] @ inputs["B"])
    print("schedule verified against NumPy: OK\n")

    # 5. Show the generated kernel.
    kernel = lower_etir(result.best)
    print(emit_cuda(kernel, gemm))


if __name__ == "__main__":
    main()
