#!/usr/bin/env python3
"""Look inside the construction graph and the Markov analysis.

For a small GEMM this script materializes the whole construction space,
prints the transition structure around the initial state, runs the §IV-D
analysis (irreducibility, aperiodicity, value iteration), and traces one
annealed walk action by action — the machinery behind Gensor, made
visible.

Run:  python examples/inspect_construction_graph.py
"""

import math

from repro import operators, rtx4090
from repro.core import convergence
from repro.core.graph import ConstructionGraph
from repro.core.policy import TransitionPolicy, append_probability
from repro.ir.etir import ETIR
from repro.utils.rng import new_rng


def main() -> None:
    hw = rtx4090()
    gemm = operators.matmul(12, 12, 4, name="inspect_gemm")

    # --- the neighborhood of the initial state ------------------------------
    graph = ConstructionGraph(hw)
    start = ETIR.initial(gemm)
    print("initial state:", start.describe())
    print("outgoing edges (action, benefit):")
    for edge in graph.expand(start):
        print(f"  {edge.action.describe(start):18s} benefit {edge.benefit:8.3f}")

    # --- §IV-D convergence analysis -------------------------------------------
    report = convergence.analyze(gemm, hw, max_nodes=8000)
    print(
        f"\nMarkov analysis: {report.num_states} states, {report.num_edges} edges"
        f"\n  irreducible per level: {report.irreducible_per_level}"
        f"\n  aperiodic: {report.aperiodic}"
        f"\n  value iteration converged in {report.value_iterations} steps"
        f"\n  stationary mass on top-decile states: "
        f"{report.stationary_mass_on_top_decile:.1%}"
    )

    # --- one annealed walk, narrated ---------------------------------------------
    print("\nannealed walk (T0=100, cooling 0.5 — the paper's schedule):")
    policy = TransitionPolicy(ConstructionGraph(hw), new_rng(0))
    state, temperature = start, 100.0
    step = 0
    while temperature > 0.01:
        progress = math.log2(100.0 / temperature)
        edge = policy.select(state, progress)
        if edge is None:
            break
        state = policy.graph.nodes[edge.dst_key]
        print(
            f"  t={step:2d} T={temperature:8.2f} "
            f"p(append)={append_probability(temperature):.2f} "
            f"{edge.action.describe(state):16s} -> {state.describe()}"
        )
        temperature /= 2.0
        step += 1


if __name__ == "__main__":
    main()
