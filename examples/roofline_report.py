#!/usr/bin/env python3
"""Roofline reporting: why is this schedule as fast as it is?

Compiles one representative operator per family with Gensor and prints
each winner's roofline classification — which pipe bounds it, its
arithmetic intensity, and how much of the attainable ceiling it reaches.
Demonstrates the diagnostic API (`repro.sim.roofline`) a performance
engineer would reach for when a kernel underperforms.

Run:  python examples/roofline_report.py
"""

from repro import Gensor, GensorConfig, operators, rtx4090
from repro.sim.roofline import analyze_roofline
from repro.utils.tables import Table

WORKLOADS = {
    "GEMM 4096^3": lambda: operators.matmul(4096, 4096, 4096, "r_gemm"),
    "GEMV 16384x16384": lambda: operators.gemv(16384, 16384, "r_gemv"),
    "Conv2d 128x128x28": lambda: operators.conv2d(
        128, 128, 30, 30, 128, 3, 3, 1, "r_conv"
    ),
    "AvgPool 16x48x48": lambda: operators.avgpool2d(16, 48, 48, 48, 2, 2, "r_pool"),
}


def main() -> None:
    hw = rtx4090()
    gensor = Gensor(hw, GensorConfig(num_chains=3, top_k=6, polish_steps=60))
    table = Table(
        "Workload", "AI (FLOP/B)", "Bound", "Achieved", "Attainable", "Efficiency",
        title="Roofline positions of Gensor's winners (simulated RTX 4090)",
    )
    for name, factory in WORKLOADS.items():
        compute = factory()
        result = gensor.compile(compute)
        report = analyze_roofline(result.best, hw)
        table.add_row(
            name,
            f"{report.arithmetic_intensity:.1f}",
            report.bound,
            f"{report.achieved_flops / 1e12:.2f}T",
            f"{report.roofline_flops / 1e12:.2f}T",
            f"{report.efficiency:.0%}",
        )
    print(table.render())
    print(
        "\nReading: compute-bound winners sit near the FLOPS ceiling; "
        "memory-bound ones near AI x DRAM bandwidth. Large gaps flag "
        "occupancy or conflict problems worth investigating."
    )


if __name__ == "__main__":
    main()
