#!/usr/bin/env python3
"""Dynamic-model serving: re-optimize a mutating network on an edge device.

The paper's Good-Flexibility scenario (Figs. 11–12): an edge deployment
whose model is repeatedly re-configured (here MobileNetV2's channel width
changes between serving stages), so the compiler's optimization time sits
on the serving critical path.  The script replays the cycle with Roller
and Gensor on the simulated Orin Nano and prints each method's timeline —
showing how construction-speed compilation makes re-optimization cheap
enough to run between stages.

Run:  python examples/dynamic_model_serving.py
"""

from repro import Gensor, GensorConfig, orin_nano
from repro.baselines import Roller
from repro.models import DynamicScenario, mobilenet_v2
from repro.utils.tables import Table

WIDTHS = (1.0, 0.75, 1.25)


def main() -> None:
    hw = orin_nano()
    # 500 inference requests of batch 32 per stage.
    scenario = DynamicScenario(
        model_factory=lambda cycle: mobilenet_v2(
            batch=32, width_mult=WIDTHS[cycle % len(WIDTHS)]
        ),
        cycles=3,
        frames_per_stage=500 * 32,
    )
    methods = {
        "roller": Roller(hw),
        "gensor": Gensor(hw, GensorConfig(num_chains=4, top_k=10, polish_steps=80)),
    }

    table = Table(
        "Method", "Optimize (s)", "Inference (s)", "Total (s)",
        title="MobileNetV2 width cycling on the simulated Orin Nano "
        f"(widths {WIDTHS}, 500 batches/stage)",
    )
    for name, compiler in methods.items():
        segments = scenario.run(compiler, name)
        opt = sum(s.duration_s for s in segments if s.kind == "optimize")
        inf = sum(s.duration_s for s in segments if s.kind == "inference")
        table.add_row(name, f"{opt:.1f}", f"{inf:.1f}", f"{opt + inf:.1f}")
        timeline = " ".join(
            f"[{s.kind[:3]} {s.duration_s:.0f}s]" for s in segments
        )
        print(f"{name:7s} {timeline}")
    print()
    print(table.render())


if __name__ == "__main__":
    main()
